"""Worker-pool execution of independent simulation legs and chunk jobs.

The queueing figures are embarrassingly parallel across *legs*: one
buffer size, one background model, or one twisted-mean candidate per
leg (Figs. 14, 16, 17).  Each leg is seeded with its own child
generator from :func:`~repro.stats.random.spawn_rngs` *before* any leg
runs, so results are bit-for-bit identical whatever the worker count
or completion order — parallelism only reorders wall-clock time, never
randomness.

Two pool flavours share one execution engine (:func:`run_tasks`):

- **Threads** for the leg runners (:func:`run_legs`): the heavy
  per-step work (BLAS matrix-vector products, bulk normal draws)
  releases the GIL, the shared :mod:`~repro.processes.coeff_table`
  cache stays shared, and nothing needs to be pickled.
- **Processes** for the scene-chunked generation pipeline
  (:mod:`repro.processes.chunked`) and the sharded aggregate engine
  (:mod:`repro.core.aggregate`): tasks are pure picklable payloads, so
  they sidestep the GIL entirely and scale FFT-bound synthesis across
  cores.

Persistent shared pool
----------------------
Process pools are expensive to build (fork + interpreter warm-up per
worker), and the capacity runners used to pay that price once per
``generate()`` call.  :func:`shared_pool` keeps one process-wide,
lazily created :class:`~concurrent.futures.ProcessPoolExecutor` alive
across calls; ``run_tasks``/``reduce_tasks`` use it by default for
``kind="process"`` (``pool="shared"``) and ``pool="per-call"`` restores
the old build-and-tear-down behaviour.  The pool is rebuilt only when a
different size is requested or a worker died, and it is shut down by an
:mod:`atexit` hook (or explicitly via :func:`shutdown_shared_pool`).
Each worker runs :func:`_prewarm_worker` once at spawn, paying the
backend-registry and spectral/coefficient cache imports per *worker*
instead of per task.  Pool lifetime never touches task seeding, so
results are bit-identical whichever pool serves them.

Zero-copy transport
-------------------
``transport=`` selects how ndarray results cross the process boundary:
``"auto"`` (default) parks results of at least
``REPRO_SHM_MIN_BYTES`` bytes in :mod:`multiprocessing.shared_memory`
segments and sends back only tiny descriptors (see
:mod:`repro.simulation.shm`), ``"shm"`` forces that path for every
ndarray result, and ``"pickle"`` restores the byte-for-byte pipe round
trip.  When shared memory is unavailable the engine falls back to
pickle automatically.  Transport only moves bytes — results are
bit-identical across all three settings.

Knobs and precedence
--------------------
``workers=`` on the runners selects the thread-pool size per call;
``None`` defers to the ``REPRO_WORKERS`` environment variable (default
1 = serial in-line execution, which bypasses the pool entirely).
``processes=`` on the process-parallel engines works the same way
against ``REPRO_PROCESSES``.  The two variables are independent: a
chunked generation running inside a threaded leg pool reads
``REPRO_PROCESSES`` for its chunk jobs and never consults
``REPRO_WORKERS``, and the leg runners never consult
``REPRO_PROCESSES``.  An explicit argument always wins over its
environment variable.  A set-but-malformed variable (zero, negative,
non-integer, or whitespace) raises
:class:`~repro.exceptions.ValidationError` naming the variable and the
offending value.  Neither knob ever changes results: pool sizing only
reorders wall-clock time.

Callers may also hand :func:`run_tasks` / :func:`run_legs` an
``executor=`` instance (any :class:`concurrent.futures.Executor`) to
reuse a long-lived pool across calls; the pool is used as-is and never
shut down here.  :func:`pool_scope` is the recommended way to get such
an executor for process tasks.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from contextlib import contextmanager
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, Iterator, List, Optional, Sequence, TypeVar

import numpy as np

from .._validation import check_choice, check_positive_int
from ..exceptions import ValidationError
from ..observability import ensure_context
from . import shm as _shm
from .shm import ShmArrayRef, ShmExportTask

__all__ = [
    "default_workers",
    "resolve_workers",
    "default_processes",
    "resolve_processes",
    "shared_pool",
    "pool_scope",
    "shutdown_shared_pool",
    "pool_stats",
    "reset_pool_stats",
    "run_legs",
    "run_tasks",
    "reduce_tasks",
]

T = TypeVar("T")
P = TypeVar("P")

#: Environment variable consulted when ``workers=None`` (thread legs).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable consulted when ``processes=None`` (chunk jobs).
PROCESSES_ENV = "REPRO_PROCESSES"

_POOL_CHOICES = ("shared", "per-call")
_TRANSPORT_CHOICES = ("auto", "shm", "pickle")


def _env_count(name: str) -> int:
    """Pool size implied by environment variable ``name``.

    Unset or empty means 1 (serial).  Anything else must parse as a
    positive integer; zero, negative, non-integer, and whitespace-only
    values raise a :class:`ValidationError` naming the variable and the
    offending value rather than silently running serial.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return 1
    stripped = raw.strip()
    value: Optional[int] = None
    if stripped:
        try:
            value = int(stripped)
        except ValueError:
            value = None
    if value is None or value <= 0:
        raise ValidationError(
            f"{name} must be a positive integer, got {raw!r}"
        )
    return value


def default_workers() -> int:
    """Worker count implied by the environment (``REPRO_WORKERS``).

    Returns 1 (serial) when the variable is unset or empty; raises
    :class:`ValidationError` when it is set but malformed.
    """
    return _env_count(WORKERS_ENV)


def resolve_workers(workers: Optional[int]) -> int:
    """Validate an explicit ``workers`` argument or fall back to the env."""
    if workers is None:
        return default_workers()
    return check_positive_int(workers, "workers")


def default_processes() -> int:
    """Process count implied by the environment (``REPRO_PROCESSES``).

    Returns 1 (in-line) when the variable is unset or empty; raises
    :class:`ValidationError` when it is set but malformed.
    """
    return _env_count(PROCESSES_ENV)


def resolve_processes(processes: Optional[int]) -> int:
    """Validate an explicit ``processes`` argument or fall back to the env."""
    if processes is None:
        return default_processes()
    return check_positive_int(processes, "processes")


# ---------------------------------------------------------------------------
# Persistent shared process pool
# ---------------------------------------------------------------------------

_pool_lock = threading.RLock()
_shared_pool_exec: Optional[ProcessPoolExecutor] = None
_shared_pool_size = 0
_pool_counters: Dict[str, int] = {
    "spinups": 0,
    "reuse_hits": 0,
    "shutdowns": 0,
}


def _prewarm_worker() -> None:
    """Per-worker initializer: pay heavy imports once per worker.

    Touches the backend registry and the spectral/coefficient cache
    modules so the first task on each worker does not pay their import
    cost.  Fork-started workers additionally inherit the parent's warm
    cache contents for free.
    """
    try:
        import repro.processes.coeff_table  # noqa: F401
        import repro.processes.davies_harte  # noqa: F401
        import repro.processes.registry  # noqa: F401
        import repro.processes.spectral_cache  # noqa: F401
    except ImportError:  # pragma: no cover - partial install
        pass


def shared_pool(
    processes: Optional[int] = None, *, metrics=None
) -> ProcessPoolExecutor:
    """Return the process-wide reusable pool, (re)building it if needed.

    The pool is created lazily on first use, sized by ``processes``
    (``None`` defers to ``REPRO_PROCESSES``), and kept alive across
    calls — workers spawn on demand, so an idle slot costs nothing.  A
    request for a different size, or a broken pool (a worker died),
    triggers a rebuild; otherwise the live pool is returned as-is.  The
    pool is never shut down by callers: an :mod:`atexit` hook (or an
    explicit :func:`shutdown_shared_pool`) ends its life.

    ``metrics`` records ``pool.spinups`` / ``pool.reuse_hits`` counters
    and a ``pool.size`` gauge.
    """
    global _shared_pool_exec, _shared_pool_size
    size = resolve_processes(processes)
    ctx = ensure_context(metrics)
    with _pool_lock:
        pool = _shared_pool_exec
        if (
            pool is not None
            and _shared_pool_size == size
            and not getattr(pool, "_broken", False)
        ):
            _pool_counters["reuse_hits"] += 1
            ctx.inc("pool.reuse_hits")
            ctx.set("pool.size", size)
            return pool
        if pool is not None:
            _shared_pool_exec = None
            _shared_pool_size = 0
            pool.shutdown(wait=True)
            _pool_counters["shutdowns"] += 1
        pool = ProcessPoolExecutor(
            max_workers=size, initializer=_prewarm_worker
        )
        _shared_pool_exec = pool
        _shared_pool_size = size
        _pool_counters["spinups"] += 1
        ctx.inc("pool.spinups")
        ctx.set("pool.size", size)
        return pool


@contextmanager
def pool_scope(
    processes: Optional[int] = None, *, metrics=None
) -> Iterator[ProcessPoolExecutor]:
    """Context manager handing out the shared pool *without* shutting it down.

    The drop-in replacement for ``with ProcessPoolExecutor(...) as p:``
    in engine code: the body gets a ready executor, and exit leaves the
    pool alive for the next caller.  Use :func:`shutdown_shared_pool`
    to end its life explicitly (tests), or rely on the atexit hook.
    """
    yield shared_pool(processes, metrics=metrics)


def shutdown_shared_pool() -> None:
    """Shut down the shared pool (if live) and forget it.

    Safe to call repeatedly; the next :func:`shared_pool` call builds a
    fresh pool.  Registered with :mod:`atexit` so the interpreter never
    exits with live workers.
    """
    global _shared_pool_exec, _shared_pool_size
    with _pool_lock:
        pool = _shared_pool_exec
        _shared_pool_exec = None
        _shared_pool_size = 0
        if pool is not None:
            _pool_counters["shutdowns"] += 1
    if pool is not None:
        pool.shutdown(wait=True)


def pool_stats() -> Dict[str, int]:
    """Snapshot of shared-pool counters plus the current ``size`` gauge."""
    with _pool_lock:
        out = dict(_pool_counters)
        out["size"] = _shared_pool_size if _shared_pool_exec is not None else 0
    return out


def reset_pool_stats() -> None:
    """Zero the shared-pool counters (test/bench seam)."""
    with _pool_lock:
        for key in _pool_counters:
            _pool_counters[key] = 0


atexit.register(shutdown_shared_pool)


def _invoke(job: Callable[[], T]) -> T:
    """Run a zero-argument leg job (the ``run_legs`` task function)."""
    return job()


def _timed_call(fn, payload):
    """Run ``fn(payload)`` and return ``(result, wall_seconds)``.

    Module-level so it can cross a process boundary; the timing happens
    inside the worker and never touches a random stream.
    """
    start = time.perf_counter()
    result = fn(payload)
    return result, time.perf_counter() - start


def _drain_futures(futures: Sequence, timed: bool) -> None:
    """Cancel or await leftover futures, unlinking any shm results.

    The error path of the pooled runners: once a task or the reducer
    has raised, every in-flight future may still complete and park a
    segment that nobody will redeem.  Cancel what has not started,
    await the rest, and discard any descriptors they produced so the
    ``shm.segments_live`` gauge returns to zero even on failure.
    """
    for future in futures:
        future.cancel()
    for future in futures:
        if future.cancelled():
            continue
        try:
            outcome = future.result()
        except BaseException:
            continue
        result = outcome[0] if timed else outcome
        if isinstance(result, ShmArrayRef):
            _shm.discard(result)


def _transport_setup(
    fn, kind: str, executor: Optional[Executor], pooled: bool, transport: str, ctx
):
    """Resolve the effective transport for a pooled run.

    Returns ``(task_fn, cross_process)`` where ``task_fn`` is ``fn``
    possibly wrapped in a :class:`ShmExportTask`.  The shm threshold is
    resolved here, in the parent, so workers never consult their
    (possibly stale) environment.
    """
    cross_process = pooled and (
        isinstance(executor, ProcessPoolExecutor)
        if executor is not None
        else kind == "process"
    )
    if not cross_process or transport == "pickle":
        return fn, cross_process
    if not _shm.shm_available():  # pragma: no cover - shm exists on Linux CI
        _shm.note_fallback()
        ctx.inc("shm.fallbacks")
        return fn, cross_process
    return ShmExportTask(fn, _shm.resolve_min_bytes(transport)), cross_process


def run_tasks(
    fn: Callable[[P], T],
    payloads: Sequence[P],
    *,
    workers: Optional[int] = None,
    kind: str = "thread",
    executor: Optional[Executor] = None,
    metrics=None,
    prefix: str = "parallel",
    pool: str = "shared",
    transport: str = "auto",
) -> List[T]:
    """Run ``fn(payload)`` for each payload, serially or on a pool.

    This is the shared execution engine behind :func:`run_legs`
    (threads) and the chunked generation pipeline (processes).  Results
    are returned in submission order; any task exception propagates to
    the caller as it would serially.

    Parameters
    ----------
    fn:
        Task function.  For ``kind="process"`` it must be picklable
        (a module-level function), as must every payload.
    payloads:
        One payload per task.
    workers:
        Pool size; ``None`` defers to ``REPRO_WORKERS``
        (``kind="thread"``) or ``REPRO_PROCESSES`` (``kind="process"``).
        ``1`` — or an empty/singleton payload list — runs in-line with
        no pool.
    kind:
        ``"thread"`` or ``"process"``.  Ignored when ``executor`` is
        given.
    executor:
        Optional caller-managed :class:`concurrent.futures.Executor`;
        tasks are submitted to it as-is and it is *not* shut down here.
        The caller remains responsible for matching the executor flavour
        to the task functions (process pools need picklable tasks).
    metrics:
        Optional :class:`~repro.observability.RunContext`.  Records a
        ``<prefix>.workers`` gauge, a ``<prefix>.legs`` counter, a
        ``<prefix>.job_seconds`` per-task wall-time summary, a
        ``<prefix>.occupancy`` gauge (total task seconds over pool
        wall-clock seconds, i.e. the average number of busy workers),
        and — for process tasks — the ``pool.*`` / ``shm.*`` runtime
        series.  All bookkeeping happens outside the tasks' random
        streams, so seeded tasks remain bit-identical with metrics on
        or off.
    prefix:
        Metric-name prefix (``"parallel"`` for the leg runners,
        ``"chunked"`` for the chunk pipeline).
    pool:
        ``"shared"`` (default) serves ``kind="process"`` tasks from the
        process-wide :func:`shared_pool`; ``"per-call"`` builds and
        tears down a private pool, the pre-runtime behaviour.  Ignored
        for threads and when ``executor`` is given.
    transport:
        ``"auto"`` (default), ``"shm"``, or ``"pickle"`` — how ndarray
        results cross a process boundary (see module docstring).
        Ignored for threads and in-line runs.  Never changes result
        bits.
    """
    payloads = list(payloads)
    check_choice(kind, "kind", ("thread", "process"))
    check_choice(pool, "pool", _POOL_CHOICES)
    check_choice(transport, "transport", _TRANSPORT_CHOICES)
    if executor is not None and not isinstance(executor, Executor):
        raise ValidationError(
            "executor must be a concurrent.futures.Executor, got "
            f"{type(executor).__name__}"
        )
    if workers is None and executor is not None:
        # A caller-managed pool decides its own size; it only needs to
        # be engaged when there is more than one task.
        count = 2 if len(payloads) > 1 else 1
    elif kind == "process":
        count = resolve_processes(workers)
    else:
        count = resolve_workers(workers)
    ctx = ensure_context(metrics)
    pooled = count > 1 and len(payloads) > 1
    pool_size = min(count, len(payloads)) if pooled else 1
    ctx.set(f"{prefix}.workers", pool_size)
    ctx.inc(f"{prefix}.legs", len(payloads))
    task_fn, cross_process = _transport_setup(
        fn, kind, executor, pooled, transport, ctx
    )
    tally = {"zero_copy": 0, "pickled": 0, "segments": 0}

    def redeem(result):
        if isinstance(result, ShmArrayRef):
            tally["zero_copy"] += result.nbytes
            tally["segments"] += 1
            return _shm.redeem_copy(result)
        if cross_process and isinstance(result, np.ndarray):
            tally["pickled"] += result.nbytes
            _shm.note_pickled(result.nbytes)
        return result

    def run_inline() -> tuple:
        if not ctx.enabled:
            return [fn(payload) for payload in payloads], None
        results: List[T] = []
        job_seconds: List[float] = []
        for payload in payloads:
            result, seconds = _timed_call(fn, payload)
            results.append(result)
            job_seconds.append(seconds)
        return results, job_seconds

    def run_pooled(pool_exec: Executor) -> tuple:
        timed = ctx.enabled
        futures = [
            pool_exec.submit(_timed_call, task_fn, payload)
            if timed
            else pool_exec.submit(task_fn, payload)
            for payload in payloads
        ]
        results: List[T] = []
        job_seconds: Optional[List[float]] = [] if timed else None
        consumed = 0
        try:
            for future in futures:
                outcome = future.result()
                consumed += 1
                if timed:
                    result, seconds = outcome
                    job_seconds.append(seconds)
                else:
                    result = outcome
                results.append(redeem(result))
        except BaseException:
            _drain_futures(futures[consumed:], timed)
            raise
        return results, job_seconds

    wall_start = time.perf_counter()
    if not pooled:
        results, job_seconds = run_inline()
    elif executor is not None:
        results, job_seconds = run_pooled(executor)
    elif kind == "process":
        if pool == "shared":
            results, job_seconds = run_pooled(shared_pool(count, metrics=ctx))
        else:
            with ProcessPoolExecutor(
                max_workers=pool_size, initializer=_prewarm_worker
            ) as pool_exec:
                results, job_seconds = run_pooled(pool_exec)
    else:
        with ThreadPoolExecutor(max_workers=pool_size) as pool_exec:
            results, job_seconds = run_pooled(pool_exec)
    if cross_process:
        ctx.inc("shm.bytes_zero_copy", tally["zero_copy"])
        ctx.inc("shm.bytes_pickled", tally["pickled"])
        ctx.inc("shm.segments", tally["segments"])
    if job_seconds is not None:
        wall = time.perf_counter() - wall_start
        ctx.observe_many(f"{prefix}.job_seconds", job_seconds)
        if wall > 0.0:
            ctx.set(f"{prefix}.occupancy", sum(job_seconds) / wall)
    return results


def reduce_tasks(
    fn: Callable[[P], T],
    payloads: Sequence[P],
    reducer: Callable[[T, int], None],
    *,
    workers: Optional[int] = None,
    kind: str = "process",
    executor: Optional[Executor] = None,
    metrics=None,
    prefix: str = "parallel",
    max_pending: Optional[int] = None,
    pool: str = "shared",
    transport: str = "auto",
) -> int:
    """Run ``fn(payload)`` per payload and *stream* results into ``reducer``.

    The streaming counterpart of :func:`run_tasks` for reductions whose
    combined results would dwarf the reduced value (e.g. the aggregate
    engine folding per-block ``(horizon,)`` partial sums into one
    feed).  ``reducer(result, index)`` is called strictly in submission
    order — index 0 first, then 1, and so on — and each result is
    released before the next is awaited, so peak memory is bounded by
    the in-flight window (at most ``max_pending`` undelivered results,
    default ``2 x pool size``), **not** by ``len(payloads)``.

    The ordered fold is what keeps floating-point reductions
    bit-identical at any pool size: the reducer observes exactly the
    serial order whatever the completion order, so worker count only
    reorders wall-clock time, never arithmetic.  Exceptions from any
    task propagate to the caller (in-flight tasks are awaited and any
    shared-memory results they produced are unlinked before the
    exception leaves this function).

    On the zero-copy path the reducer receives a *transient view* into
    the worker's segment — valid only for the duration of the call; it
    must read (fold) the array, not retain it.

    Parameters mirror :func:`run_tasks` (``workers=None`` defers to
    ``REPRO_PROCESSES`` for ``kind="process"`` / ``REPRO_WORKERS`` for
    threads; ``executor=`` reuses a caller-managed pool; ``pool=`` and
    ``transport=`` select the shared pool and the shm transport);
    ``metrics`` records the same ``<prefix>.workers`` / ``.legs`` /
    ``.job_seconds`` / ``.occupancy`` series plus the ``pool.*`` /
    ``shm.*`` runtime series.  Returns the number of payloads reduced.
    """
    payloads = list(payloads)
    check_choice(kind, "kind", ("thread", "process"))
    check_choice(pool, "pool", _POOL_CHOICES)
    check_choice(transport, "transport", _TRANSPORT_CHOICES)
    if executor is not None and not isinstance(executor, Executor):
        raise ValidationError(
            "executor must be a concurrent.futures.Executor, got "
            f"{type(executor).__name__}"
        )
    if workers is None and executor is not None:
        count = 2 if len(payloads) > 1 else 1
    elif kind == "process":
        count = resolve_processes(workers)
    else:
        count = resolve_workers(workers)
    ctx = ensure_context(metrics)
    pooled = count > 1 and len(payloads) > 1
    pool_size = min(count, len(payloads)) if pooled else 1
    if max_pending is None:
        max_pending = 2 * pool_size
    max_pending = check_positive_int(max_pending, "max_pending")
    ctx.set(f"{prefix}.workers", pool_size)
    ctx.inc(f"{prefix}.legs", len(payloads))
    task_fn, cross_process = _transport_setup(
        fn, kind, executor, pooled, transport, ctx
    )
    tally = {"zero_copy": 0, "pickled": 0, "segments": 0}

    def reduce_inline() -> Optional[List[float]]:
        if not ctx.enabled:
            for index, payload in enumerate(payloads):
                reducer(fn(payload), index)
            return None
        job_seconds: List[float] = []
        for index, payload in enumerate(payloads):
            result, seconds = _timed_call(fn, payload)
            job_seconds.append(seconds)
            reducer(result, index)
        return job_seconds

    def reduce_pooled(pool_exec: Executor) -> Optional[List[float]]:
        timed = ctx.enabled
        job_seconds: Optional[List[float]] = [] if timed else None
        pending: List = []
        submitted = 0
        delivered = 0
        try:
            while delivered < len(payloads):
                while (
                    submitted < len(payloads)
                    and len(pending) < max_pending
                ):
                    payload = payloads[submitted]
                    pending.append(
                        pool_exec.submit(_timed_call, task_fn, payload)
                        if timed
                        else pool_exec.submit(task_fn, payload)
                    )
                    submitted += 1
                future = pending.pop(0)
                outcome = future.result()
                if timed:
                    result, seconds = outcome
                    job_seconds.append(seconds)
                else:
                    result = outcome
                if isinstance(result, ShmArrayRef):
                    tally["zero_copy"] += result.nbytes
                    tally["segments"] += 1
                    array, segment = _shm.attach(result)
                    try:
                        reducer(array, delivered)
                    finally:
                        del array
                        _shm.release(result, segment)
                else:
                    if cross_process and isinstance(result, np.ndarray):
                        tally["pickled"] += result.nbytes
                        _shm.note_pickled(result.nbytes)
                    reducer(result, delivered)
                result = None  # release before awaiting the next
                delivered += 1
        finally:
            _drain_futures(pending, timed)
        return job_seconds

    wall_start = time.perf_counter()
    if not pooled:
        job_seconds = reduce_inline()
    elif executor is not None:
        job_seconds = reduce_pooled(executor)
    elif kind == "process":
        if pool == "shared":
            job_seconds = reduce_pooled(shared_pool(count, metrics=ctx))
        else:
            with ProcessPoolExecutor(
                max_workers=pool_size, initializer=_prewarm_worker
            ) as pool_exec:
                job_seconds = reduce_pooled(pool_exec)
    else:
        with ThreadPoolExecutor(max_workers=pool_size) as pool_exec:
            job_seconds = reduce_pooled(pool_exec)
    if cross_process:
        ctx.inc("shm.bytes_zero_copy", tally["zero_copy"])
        ctx.inc("shm.bytes_pickled", tally["pickled"])
        ctx.inc("shm.segments", tally["segments"])
    if job_seconds is not None:
        wall = time.perf_counter() - wall_start
        ctx.observe_many(f"{prefix}.job_seconds", job_seconds)
        if wall > 0.0:
            ctx.set(f"{prefix}.occupancy", sum(job_seconds) / wall)
    return len(payloads)


def run_legs(
    jobs: Sequence[Callable[[], T]],
    workers: Optional[int] = None,
    *,
    metrics=None,
    executor: Optional[Executor] = None,
) -> List[T]:
    """Run independent zero-argument jobs, serially or on a thread pool.

    Results are returned in submission order.  ``workers=1`` (or an
    empty/singleton job list) runs in-line with no pool overhead.  Any
    job exception propagates to the caller, as it would serially.

    ``metrics`` (an optional :class:`~repro.observability.RunContext`)
    records a ``parallel.workers`` gauge, a ``parallel.legs`` counter, a
    ``parallel.job_seconds`` summary of per-job wall time, and a
    ``parallel.occupancy`` gauge — total job seconds over the pool's
    wall-clock seconds, i.e. the average number of busy workers.  All
    bookkeeping happens outside the jobs themselves, so seeded jobs
    remain bit-identical.

    ``executor`` optionally reuses a caller-managed thread pool (see
    :func:`run_tasks`); leg jobs are closures, so a process pool is not
    a valid executor here.
    """
    return run_tasks(
        _invoke,
        jobs,
        workers=workers,
        kind="thread",
        executor=executor,
        metrics=metrics,
        prefix="parallel",
    )
