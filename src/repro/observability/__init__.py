"""Run-metrics observability for the simulation pipeline.

A lightweight, standard-library-only metrics subsystem: labelled
counters, gauges, timers, summaries and histograms in a thread-safe
:class:`MetricsRegistry`; a :class:`RunContext` that nests scopes
(run → leg → step block) and deterministically merges the registries of
parallel workers; and sinks for in-memory snapshots, JSON-lines export,
and Prometheus-style text rendering.

Every instrumented call site in the library takes ``metrics=None`` and
routes it through :func:`ensure_context`, so the default is the no-op
:data:`NULL_CONTEXT` — disabled instrumentation costs a no-op method
call per site, holds no state, and never touches a random stream, which
keeps un-instrumented runs bit-identical to pre-observability output.

Quickstart::

    from repro.observability import RunContext
    from repro.simulation import search_twisted_mean

    ctx = RunContext()
    result = search_twisted_mean(..., metrics=ctx)
    for entry in ctx.snapshot():
        print(entry["name"], entry.get("value"))

See ``docs/observability.md`` for the metric-name catalogue and label
conventions.
"""

from .context import (
    NULL_CONTEXT,
    NullRunContext,
    RunContext,
    ensure_context,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Summary,
    Timer,
    canonical_labels,
)
from .sinks import (
    InMemorySink,
    JsonLinesSink,
    NullSink,
    PrometheusTextSink,
    render_prometheus,
    to_json_lines,
)

__all__ = [
    "Counter",
    "Gauge",
    "Summary",
    "Timer",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "canonical_labels",
    "RunContext",
    "NullRunContext",
    "NULL_CONTEXT",
    "ensure_context",
    "InMemorySink",
    "JsonLinesSink",
    "PrometheusTextSink",
    "NullSink",
    "to_json_lines",
    "render_prometheus",
]
