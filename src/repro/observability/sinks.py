"""Export sinks for metric snapshots.

A *snapshot* is the plain-dict form produced by
:meth:`~repro.observability.metrics.MetricsRegistry.snapshot` — one
entry per ``(metric name, label set)``, sorted, JSON-friendly.  Sinks
turn snapshots into artifacts:

- :class:`InMemorySink` — keeps snapshots in a list (tests, notebooks);
- :class:`JsonLinesSink` — appends one JSON object per metric entry to
  a file, preceded by a ``{"record": "header", ...}`` line per export
  (the ``repro ... --metrics-out`` format);
- :class:`PrometheusTextSink` — rewrites a file with the
  Prometheus-style text rendering of the latest snapshot;
- :class:`NullSink` — discards everything.

The two text formats are also exposed as pure functions
(:func:`to_json_lines`, :func:`render_prometheus`) so callers can embed
them — e.g. the bench harness stores raw snapshots inside its
``REPRO_BENCH_JSON`` records without touching the filesystem twice.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional

__all__ = [
    "to_json_lines",
    "render_prometheus",
    "sanitize_value",
    "InMemorySink",
    "JsonLinesSink",
    "PrometheusTextSink",
    "NullSink",
]

Snapshot = List[Dict[str, object]]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_value(value):
    """Make a metric value strict-JSON safe (inf/nan become strings)."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf', '-inf', 'nan'
    return value


def _sanitize_entry(entry: Dict[str, object]) -> Dict[str, object]:
    out = {}
    for key, value in entry.items():
        if isinstance(value, list):
            value = [
                {k: sanitize_value(v) for k, v in item.items()}
                if isinstance(item, dict) else sanitize_value(item)
                for item in value
            ]
        else:
            value = sanitize_value(value)
        out[key] = value
    return out


def to_json_lines(
    snapshot: Snapshot, *, header: Optional[Dict[str, object]] = None
) -> str:
    """Render a snapshot as JSON lines (one strict-JSON object per line).

    ``header`` (run parameters, trace name, cache info, ...) becomes a
    leading ``{"record": "header", ...}`` line; every metric entry gets
    ``"record": "metric"``.  Non-finite values are stringified so the
    output parses under strict JSON readers.
    """
    lines = []
    if header is not None:
        lines.append(json.dumps(
            {"record": "header", **_sanitize_entry(header)},
            sort_keys=True,
        ))
    for entry in snapshot:
        lines.append(json.dumps(
            {"record": "metric", **_sanitize_entry(entry)},
            sort_keys=True,
        ))
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{_prom_name(str(k))}="{v}"' for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_number(value) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, "g")


def render_prometheus(snapshot: Snapshot) -> str:
    """Render a snapshot in the Prometheus text exposition style.

    Counters/gauges emit one sample; summaries and timers emit
    ``_count``/``_sum``/``_min``/``_max``; histograms emit cumulative
    ``_bucket{le=...}`` samples plus ``_sum``/``_count``.  Metric names
    have non-identifier characters folded to ``_``.
    """
    lines: List[str] = []
    seen_types = set()
    for entry in snapshot:
        name = _prom_name(str(entry["name"]))
        kind = entry["kind"]
        labels = entry.get("labels") or {}
        if name not in seen_types:
            prom_type = {
                "counter": "counter",
                "gauge": "gauge",
                "summary": "summary",
                "timer": "summary",
                "histogram": "histogram",
            }[kind]
            lines.append(f"# TYPE {name} {prom_type}")
            seen_types.add(name)
        if kind in ("counter", "gauge"):
            lines.append(
                f"{name}{_prom_labels(labels)} "
                f"{_prom_number(entry['value'])}"
            )
        elif kind in ("summary", "timer"):
            label_str = _prom_labels(labels)
            lines.append(
                f"{name}_count{label_str} {_prom_number(entry['count'])}"
            )
            lines.append(
                f"{name}_sum{label_str} {_prom_number(entry['total'])}"
            )
            lines.append(
                f"{name}_min{label_str} {_prom_number(entry['min'])}"
            )
            lines.append(
                f"{name}_max{label_str} {_prom_number(entry['max'])}"
            )
        elif kind == "histogram":
            cumulative = 0
            for bucket in entry["buckets"]:
                cumulative += int(bucket["count"])
                le = bucket["le"]
                le_str = "+Inf" if le == "+Inf" else _prom_number(le)
                le_label = 'le="' + le_str + '"'
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, le_label)} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_sum{_prom_labels(labels)} "
                f"{_prom_number(entry['total'])}"
            )
            lines.append(
                f"{name}_count{_prom_labels(labels)} "
                f"{_prom_number(entry['count'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


class InMemorySink:
    """Collects exported snapshots in memory (newest last)."""

    def __init__(self) -> None:
        self.snapshots: List[Snapshot] = []

    def export(
        self, snapshot: Snapshot, *, header: Optional[Dict] = None
    ) -> None:
        self.snapshots.append(list(snapshot))

    @property
    def latest(self) -> Optional[Snapshot]:
        return self.snapshots[-1] if self.snapshots else None


class JsonLinesSink:
    """Appends snapshots to a JSON-lines file."""

    def __init__(self, path) -> None:
        self.path = path

    def export(
        self, snapshot: Snapshot, *, header: Optional[Dict] = None
    ) -> None:
        with open(self.path, "a") as fh:
            fh.write(to_json_lines(snapshot, header=header))


class PrometheusTextSink:
    """Rewrites a file with the Prometheus rendering of each snapshot."""

    def __init__(self, path) -> None:
        self.path = path

    def export(
        self, snapshot: Snapshot, *, header: Optional[Dict] = None
    ) -> None:
        with open(self.path, "w") as fh:
            fh.write(render_prometheus(snapshot))


class NullSink:
    """Discards every export (the default when metrics are disabled)."""

    def export(
        self, snapshot: Snapshot, *, header: Optional[Dict] = None
    ) -> None:
        pass
