"""Zero-dependency metric primitives and the labelled registry.

The queueing experiments of Figs. 14-17 fan out over buffer sizes,
twist candidates, and background models; the shared coefficient-table
cache and the backend registry sit underneath all of them.  Trusting a
rare-event run therefore needs *measurement* — cache hit rates, per-leg
wall time, effective sample sizes — without perturbing the run itself.
This module provides the building blocks:

- :class:`Counter` — monotone accumulator (cache hits, overflow hits);
- :class:`Gauge` — last-written value (ESS per twist, worker count);
- :class:`Summary` — streaming count/total/min/max/mean (weights,
  occupancy samples);
- :class:`Timer` — a :class:`Summary` of seconds measured with the
  monotonic :func:`time.perf_counter` clock;
- :class:`Histogram` — fixed-bound bucket counts with bulk ingestion
  (buffer-occupancy distributions);
- :class:`MetricFamily` — one metric name fanned out over label sets;
- :class:`MetricsRegistry` — thread-safe collection of families with
  snapshot export and deterministic merging.

Everything here is standard library only (the instrumented call sites
may use numpy to *prepare* bulk data, e.g. pre-binned histogram counts,
but the metric core never requires it), and every mutation is a couple
of attribute updates under a per-family lock — cheap enough to leave
compiled in.  The disabled path is cheaper still: see the null context
in :mod:`repro.observability.context`.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Summary",
    "Timer",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "canonical_labels",
]

#: Canonical label identity: a sorted tuple of (key, value) string pairs.
LabelsKey = Tuple[Tuple[str, str], ...]


def _label_value(value) -> str:
    """Render a label value as a stable short string.

    Floats go through ``%g`` so ``buffer=50.0`` and ``buffer=50`` name
    the same series.
    """
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


def canonical_labels(labels: Optional[Dict[str, object]]) -> LabelsKey:
    """Normalize a label mapping to its canonical sorted-tuple identity."""
    if not labels:
        return ()
    return tuple(
        sorted((str(k), _label_value(v)) for k, v in labels.items())
    )


class _OpCount:
    """Shared mutation counter (used by the overhead bench)."""

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0


class Counter:
    """A monotone, non-negative accumulator."""

    kind = "counter"
    __slots__ = ("_lock", "_ops", "_value")

    def __init__(self, lock: threading.RLock, ops: _OpCount) -> None:
        self._lock = lock
        self._ops = ops
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        amount = float(amount)
        if amount < 0:
            raise ValidationError(
                f"counter increments must be non-negative, got {amount}"
            )
        with self._lock:
            self._value += amount
            self._ops.n += 1

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def merge_from(self, other: "Counter") -> None:
        with self._lock:
            self._value += other.value

    def values(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """A last-write-wins instantaneous value."""

    kind = "gauge"
    __slots__ = ("_lock", "_ops", "_value", "_written")

    def __init__(self, lock: threading.RLock, ops: _OpCount) -> None:
        self._lock = lock
        self._ops = ops
        self._value = 0.0
        self._written = False

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._written = True
            self._ops.n += 1

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def merge_from(self, other: "Gauge") -> None:
        # Last write wins in *merge order*, which callers fix (children
        # are merged in submission order), so the result is independent
        # of worker scheduling.
        with other._lock:
            value, written = other._value, other._written
        if written:
            with self._lock:
                self._value = value
                self._written = True

    def values(self) -> Dict[str, float]:
        return {"value": self.value}


class Summary:
    """Streaming count / total / min / max (mean derived)."""

    kind = "summary"
    __slots__ = ("_lock", "_ops", "count", "total", "min", "max")

    def __init__(self, lock: threading.RLock, ops: _OpCount) -> None:
        self._lock = lock
        self._ops = ops
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._ops.n += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk-observe an iterable of values under one lock hold."""
        with self._lock:
            for value in values:
                value = float(value)
                self.count += 1
                self.total += value
                if value < self.min:
                    self.min = value
                if value > self.max:
                    self.max = value
            self._ops.n += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else float("nan")

    def merge_from(self, other: "Summary") -> None:
        with other._lock:
            count, total = other.count, other.total
            low, high = other.min, other.max
        with self._lock:
            self.count += count
            self.total += total
            if low < self.min:
                self.min = low
            if high > self.max:
                self.max = high

    def values(self) -> Dict[str, float]:
        with self._lock:
            count, total = self.count, self.total
            low, high = self.min, self.max
        mean = total / count if count else float("nan")
        return {
            "count": count,
            "total": total,
            "min": low if count else float("nan"),
            "max": high if count else float("nan"),
            "mean": mean,
        }


class _TimerHandle:
    """Context manager recording one wall-time span into a timer."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.observe(time.perf_counter() - self._start)
        return False


class Timer(Summary):
    """A :class:`Summary` of elapsed seconds (monotonic clock)."""

    kind = "timer"
    __slots__ = ()

    def time(self) -> _TimerHandle:
        """Return a context manager timing its ``with`` block."""
        return _TimerHandle(self)


class Histogram:
    """Fixed-bound bucket counts with streaming and bulk ingestion.

    ``bounds`` are strictly increasing upper bucket edges; an implicit
    overflow bucket catches everything above the last bound, so there
    are ``len(bounds) + 1`` buckets.  Bucket ``i`` counts values ``v``
    with ``bounds[i-1] < v <= bounds[i]`` (Prometheus ``le``
    convention).
    """

    kind = "histogram"
    __slots__ = ("_lock", "_ops", "bounds", "counts", "count", "total")

    def __init__(
        self,
        lock: threading.RLock,
        ops: _OpCount,
        bounds: Sequence[float],
    ) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges or any(
            b <= a for a, b in zip(edges, edges[1:])
        ):
            raise ValidationError(
                "histogram bounds must be a non-empty strictly "
                f"increasing sequence, got {bounds!r}"
            )
        self._lock = lock
        self._ops = ops
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            self._ops.n += 1

    def add_counts(
        self,
        counts: Sequence[int],
        *,
        total: float = 0.0,
        count: Optional[int] = None,
    ) -> None:
        """Bulk-add pre-binned counts (one entry per bucket).

        Instrumented sites with large arrays bin with
        ``numpy.histogram`` and hand the counts over in one call, so
        the metric layer never iterates sample-by-sample.
        """
        if len(counts) != len(self.counts):
            raise ValidationError(
                f"expected {len(self.counts)} bucket counts "
                f"(bounds + overflow), got {len(counts)}"
            )
        added = int(sum(counts)) if count is None else int(count)
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += int(c)
            self.count += added
            self.total += float(total)
            self._ops.n += 1

    def merge_from(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValidationError(
                "cannot merge histograms with different bounds: "
                f"{self.bounds!r} vs {other.bounds!r}"
            )
        with other._lock:
            counts = list(other.counts)
            count, total = other.count, other.total
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.count += count
            self.total += total

    def values(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self.counts)
            count, total = self.count, self.total
        buckets: List[Dict[str, object]] = [
            {"le": bound, "count": counts[i]}
            for i, bound in enumerate(self.bounds)
        ]
        buckets.append({"le": "+Inf", "count": counts[-1]})
        return {"count": count, "total": total, "buckets": buckets}


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "summary": Summary,
    "timer": Timer,
    "histogram": Histogram,
}


class MetricFamily:
    """One metric name fanned out over label sets of one kind."""

    __slots__ = ("name", "kind", "help", "_lock", "_ops", "_children",
                 "_buckets")

    def __init__(
        self,
        name: str,
        kind: str,
        *,
        help: str = "",
        ops: Optional[_OpCount] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValidationError(
                f"metric kind must be one of {sorted(_KINDS)}, got {kind!r}"
            )
        if kind == "histogram" and buckets is None:
            raise ValidationError(
                "histogram families require explicit buckets"
            )
        self.name = name
        self.kind = kind
        self.help = help
        self._lock = threading.RLock()
        self._ops = ops if ops is not None else _OpCount()
        self._children: Dict[LabelsKey, object] = {}
        self._buckets = tuple(buckets) if buckets is not None else None

    def labels(self, labels: Optional[Dict[str, object]] = None):
        """Get or create the child metric for a label set."""
        key = canonical_labels(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self._lock, self._ops, self._buckets)
                else:
                    child = _KINDS[self.kind](self._lock, self._ops)
                self._children[key] = child
            return child

    def items(self) -> List[Tuple[LabelsKey, object]]:
        with self._lock:
            return sorted(self._children.items())

    def merge_from(self, other: "MetricFamily") -> None:
        if other.kind != self.kind:
            raise ValidationError(
                f"cannot merge family {self.name!r} of kind {other.kind!r} "
                f"into kind {self.kind!r}"
            )
        for key, child in other.items():
            self.labels(dict(key)).merge_from(child)


class MetricsRegistry:
    """Thread-safe collection of metric families.

    All mutation goes through the get-or-create accessors
    (:meth:`counter`, :meth:`gauge`, :meth:`summary`, :meth:`timer`,
    :meth:`histogram`), so concurrent writers — the parallel leg
    runners — can share one registry directly; alternatively each
    worker records into its own registry and the parent
    :meth:`merge_from`\\ s them in a deterministic order.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}
        self._ops = _OpCount()

    # -- family accessors ------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        if not name or not isinstance(name, str):
            raise ValidationError(
                f"metric name must be a non-empty string, got {name!r}"
            )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help=help, ops=self._ops, buckets=buckets
                )
                self._families[name] = family
            elif family.kind != kind:
                raise ValidationError(
                    f"metric {name!r} is a {family.kind}, requested {kind}"
                )
            return family

    def counter(self, name: str, labels=None, *, help: str = "") -> Counter:
        return self._family(name, "counter", help).labels(labels)

    def gauge(self, name: str, labels=None, *, help: str = "") -> Gauge:
        return self._family(name, "gauge", help).labels(labels)

    def summary(self, name: str, labels=None, *, help: str = "") -> Summary:
        return self._family(name, "summary", help).labels(labels)

    def timer(self, name: str, labels=None, *, help: str = "") -> Timer:
        return self._family(name, "timer", help).labels(labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        labels=None,
        *,
        help: str = "",
    ) -> Histogram:
        return self._family(name, "histogram", help, buckets).labels(labels)

    # -- introspection / export -----------------------------------------

    @property
    def operation_count(self) -> int:
        """Total metric mutations recorded (used by the overhead bench)."""
        with self._lock:
            return self._ops.n

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def snapshot(self) -> List[Dict[str, object]]:
        """Export every metric as a plain, JSON-friendly dict.

        Entries are sorted by ``(name, labels)``, so snapshots of
        deterministically merged registries compare equal regardless of
        worker scheduling.
        """
        out: List[Dict[str, object]] = []
        for family in self.families():
            for key, metric in family.items():
                entry: Dict[str, object] = {
                    "name": family.name,
                    "kind": family.kind,
                    "labels": dict(key),
                }
                entry.update(metric.values())
                out.append(entry)
        return out

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's families into this one.

        Counters, summaries, timers and histograms combine
        commutatively; gauges are last-write-wins in merge order.
        Callers merge children in submission order, making the result
        independent of completion order.
        """
        if other is self:
            return
        for family in other.families():
            self._family(
                family.name,
                family.kind,
                family.help,
                family._buckets,
            ).merge_from(family)
        # Fold in the source's mutation count too, so operation_count
        # stays the *total* number of recording calls across a merged
        # tree of worker registries (the overhead bench relies on it).
        merged_ops = other.operation_count
        with self._lock:
            self._ops.n += merged_ops

    def __repr__(self) -> str:
        with self._lock:
            n = len(self._families)
        return f"MetricsRegistry(families={n}, ops={self.operation_count})"
