"""Run-scoped metric recording contexts.

A :class:`RunContext` is the handle instrumented code records through.
It pairs a :class:`~repro.observability.metrics.MetricsRegistry` with a
set of *scope labels* that are stamped onto every metric recorded
through it, and it nests:

- :meth:`scoped` adds labels while sharing the parent's registry —
  used for step blocks inside one leg (run → leg → step block);
- :meth:`child` adds labels *and* gives the child its own registry —
  used for parallel workers, whose registries the parent folds back in
  with :meth:`merge_children` in submission order, so the merged result
  is bit-for-bit independent of worker scheduling.

Every ``metrics=`` argument in the library defaults to ``None``, which
:func:`ensure_context` maps to the shared :data:`NULL_CONTEXT` — a
:class:`NullRunContext` whose recording methods are empty one-liners
and whose ``scoped``/``child`` return itself.  Disabled instrumentation
therefore costs one attribute lookup and a no-op call per site, keeps
no state, and never touches a random stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..exceptions import ValidationError
from .metrics import (
    Histogram,
    MetricsRegistry,
    Summary,
    Timer,
    _label_value,
)

__all__ = [
    "RunContext",
    "NullRunContext",
    "NULL_CONTEXT",
    "ensure_context",
]


class RunContext:
    """A metrics recording handle with nested label scopes.

    Parameters
    ----------
    registry:
        The backing registry; a fresh one is created when omitted.
    scope:
        Label mapping stamped onto every metric recorded through this
        context (call-site labels override scope labels on key
        collisions).
    """

    #: False only on :class:`NullRunContext`; hot loops may branch on it
    #: to skip *preparing* bulk data (the record calls themselves are
    #: already no-op-cheap when disabled).
    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        scope: Optional[Dict[str, object]] = None,
    ) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._scope: Dict[str, str] = {
            str(k): _label_value(v) for k, v in (scope or {}).items()
        }

    # -- structure -------------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """The backing registry."""
        return self._registry

    @property
    def scope(self) -> Dict[str, str]:
        """This context's scope labels (a copy)."""
        return dict(self._scope)

    def _merged(self, labels: Dict[str, object]) -> Dict[str, object]:
        if not labels:
            return self._scope
        merged: Dict[str, object] = dict(self._scope)
        merged.update(labels)
        return merged

    def scoped(self, **labels) -> "RunContext":
        """A nested scope sharing this registry (run → leg → step block)."""
        return RunContext(self._registry, scope=self._merged(labels))

    def child(self, **labels) -> "RunContext":
        """An isolated child context with its own registry.

        Hand one to each parallel worker, then fold the results back
        with :meth:`merge_children` once every worker has finished.
        """
        return RunContext(MetricsRegistry(), scope=self._merged(labels))

    def merge_children(self, children: Iterable["RunContext"]) -> None:
        """Merge child registries into this one, in the given order.

        Iterate children in submission order (not completion order) and
        the merged registry is deterministic at any worker count.
        """
        for child in children:
            if child is None or not child.enabled:
                continue
            if not isinstance(child, RunContext):
                raise ValidationError(
                    f"children must be RunContext instances, got "
                    f"{type(child).__name__}"
                )
            if child.registry is not self._registry:
                self._registry.merge_from(child.registry)

    # -- recording -------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._registry.counter(name, self._merged(labels)).inc(amount)

    def set(self, name: str, value: float, **labels) -> None:
        """Set gauge ``name`` to ``value``."""
        self._registry.gauge(name, self._merged(labels)).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record ``value`` into summary ``name``."""
        self._registry.summary(name, self._merged(labels)).observe(value)

    def observe_many(
        self, name: str, values: Iterable[float], **labels
    ) -> None:
        """Bulk-record ``values`` into summary ``name``."""
        self._registry.summary(
            name, self._merged(labels)
        ).observe_many(values)

    def time(self, name: str, **labels):
        """Context manager timing its block into timer ``name``."""
        return self._registry.timer(name, self._merged(labels)).time()

    def timer(self, name: str, **labels) -> Timer:
        """The underlying :class:`Timer` (for direct ``observe`` calls)."""
        return self._registry.timer(name, self._merged(labels))

    def histogram(
        self, name: str, buckets: Sequence[float], **labels
    ) -> Histogram:
        """The :class:`Histogram` handle for bulk ``add_counts`` calls."""
        return self._registry.histogram(
            name, buckets, self._merged(labels)
        )

    def summary(self, name: str, **labels) -> Summary:
        """The underlying :class:`Summary` handle."""
        return self._registry.summary(name, self._merged(labels))

    # -- export ----------------------------------------------------------

    def snapshot(self) -> List[Dict[str, object]]:
        """Snapshot of the backing registry (see ``MetricsRegistry``)."""
        return self._registry.snapshot()

    def __repr__(self) -> str:
        return f"RunContext(scope={self._scope!r}, registry={self._registry!r})"


class _NullTimerHandle:
    """``with``-compatible no-op returned by the null context's timers."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullRecorder:
    """No-op stand-in for Summary/Timer/Histogram handles."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def add_counts(self, counts, *, total: float = 0.0, count=None) -> None:
        pass

    def time(self) -> _NullTimerHandle:
        return _NULL_TIMER

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass


_NULL_TIMER = _NullTimerHandle()
_NULL_RECORDER = _NullRecorder()


class NullRunContext(RunContext):
    """The disabled context: every operation is an empty method.

    Shared as the :data:`NULL_CONTEXT` singleton; ``scoped``/``child``
    return ``self`` so nesting allocates nothing.
    """

    enabled = False

    def __init__(self) -> None:
        self._registry = None  # type: ignore[assignment]
        self._scope = {}

    @property
    def registry(self):  # type: ignore[override]
        return None

    def scoped(self, **labels) -> "NullRunContext":
        return self

    def child(self, **labels) -> "NullRunContext":
        return self

    def merge_children(self, children) -> None:
        pass

    def inc(self, name, amount=1.0, **labels) -> None:
        pass

    def set(self, name, value, **labels) -> None:
        pass

    def observe(self, name, value, **labels) -> None:
        pass

    def observe_many(self, name, values, **labels) -> None:
        pass

    def time(self, name, **labels) -> _NullTimerHandle:
        return _NULL_TIMER

    def timer(self, name, **labels) -> _NullRecorder:
        return _NULL_RECORDER

    def histogram(self, name, buckets, **labels) -> _NullRecorder:
        return _NULL_RECORDER

    def summary(self, name, **labels) -> _NullRecorder:
        return _NULL_RECORDER

    def snapshot(self) -> List[Dict[str, object]]:
        return []

    def __repr__(self) -> str:
        return "NullRunContext()"


#: The process-wide disabled context used whenever ``metrics=None``.
NULL_CONTEXT = NullRunContext()


def ensure_context(metrics) -> RunContext:
    """Normalize a ``metrics=`` argument to a :class:`RunContext`.

    ``None`` maps to the shared :data:`NULL_CONTEXT`; a
    :class:`RunContext` passes through; a bare
    :class:`~repro.observability.metrics.MetricsRegistry` is wrapped.
    """
    if metrics is None:
        return NULL_CONTEXT
    if isinstance(metrics, RunContext):
        return metrics
    if isinstance(metrics, MetricsRegistry):
        return RunContext(metrics)
    raise ValidationError(
        "metrics must be None, a RunContext, or a MetricsRegistry, got "
        f"{type(metrics).__name__}"
    )
