"""MPEG GOP (group-of-pictures) structure.

An MPEG-1 sequence interleaves three frame types (paper §3.3):

- **I** (intra) frames, coded independently — large;
- **P** (forward-predicted) frames — medium;
- **B** (bidirectionally predicted) frames — small.

The paper's codec produces the classic pattern ``IBBPBBPBBPBB`` with an
I frame every 12 frames.  :class:`GopStructure` parses such patterns,
generates frame-type sequences of arbitrary length, and exposes the
per-type index masks the composite model needs.
"""

from __future__ import annotations

import enum
from typing import Dict, List

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError

__all__ = ["FrameType", "GopStructure"]


class FrameType(enum.Enum):
    """MPEG frame types."""

    I = "I"
    P = "P"
    B = "B"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class GopStructure:
    """A repeating GOP pattern such as ``IBBPBBPBBPBB``.

    Parameters
    ----------
    pattern:
        String of ``I``/``P``/``B`` characters beginning with ``I``.
        The pattern repeats indefinitely; its length is the I-frame
        period ``K_I`` used by the correlation rescaling of eq. 15.
    """

    #: The paper's GOP pattern (PVRG-MPEG 1.1, I period 12).
    PAPER_PATTERN = "IBBPBBPBBPBB"

    def __init__(self, pattern: str = PAPER_PATTERN) -> None:
        if not pattern:
            raise ValidationError("GOP pattern must not be empty")
        try:
            self.pattern = tuple(FrameType(ch) for ch in pattern.upper())
        except ValueError as exc:
            raise ValidationError(
                f"GOP pattern may only contain I, P, B: {pattern!r}"
            ) from exc
        if self.pattern[0] is not FrameType.I:
            raise ValidationError(
                f"GOP pattern must start with an I frame, got {pattern!r}"
            )

    @classmethod
    def paper(cls) -> "GopStructure":
        """Return the paper's IBBPBBPBBPBB structure."""
        return cls(cls.PAPER_PATTERN)

    @property
    def i_period(self) -> int:
        """The I-frame period ``K_I`` (the pattern length)."""
        return len(self.pattern)

    @property
    def pattern_string(self) -> str:
        """The pattern as a string."""
        return "".join(ft.value for ft in self.pattern)

    def type_counts(self) -> Dict[FrameType, int]:
        """Number of frames of each type per GOP."""
        counts = {ft: 0 for ft in FrameType}
        for ft in self.pattern:
            counts[ft] += 1
        return counts

    def frame_types(self, n: int) -> List[FrameType]:
        """Return the frame-type sequence for ``n`` frames."""
        n = check_positive_int(n, "n")
        period = self.i_period
        return [self.pattern[k % period] for k in range(n)]

    def type_codes(self, n: int) -> np.ndarray:
        """Return frame types for ``n`` frames as a character array."""
        return np.array([ft.value for ft in self.frame_types(n)])

    def mask(self, frame_type: FrameType, n: int) -> np.ndarray:
        """Boolean mask selecting frames of ``frame_type`` among ``n``."""
        if not isinstance(frame_type, FrameType):
            raise ValidationError(
                f"frame_type must be a FrameType, got {frame_type!r}"
            )
        n = check_positive_int(n, "n")
        period = self.i_period
        base = np.array([ft is frame_type for ft in self.pattern])
        reps = int(np.ceil(n / period))
        return np.tile(base, reps)[:n]

    def indices(self, frame_type: FrameType, n: int) -> np.ndarray:
        """Indices of frames of ``frame_type`` among ``n`` frames."""
        return np.nonzero(self.mask(frame_type, n))[0]

    def __repr__(self) -> str:
        return f"GopStructure({self.pattern_string!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GopStructure):
            return NotImplemented
        return self.pattern == other.pattern

    def __hash__(self) -> int:
        return hash(self.pattern)
