"""Scene-change detection and scene-length statistics.

The autocorrelation "knee" the paper fits (eq. 10-13) has a physical
origin: scene changes.  Within a scene, frame sizes are highly
correlated; across a cut they decorrelate, so the SRD decay rate
reflects the scene-length scale.  This module detects cuts from the
frame-size series (a large relative jump against a local baseline) and
summarizes the scene-length distribution — analysis that lets a user
check whether a fitted knee is consistent with the editing rhythm of
their material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import (
    check_min_length,
    check_positive_float,
    check_positive_int,
)
from ..exceptions import EstimationError

__all__ = ["SceneStatistics", "detect_scene_changes", "scene_statistics"]


def detect_scene_changes(
    sizes,
    *,
    threshold: float = 0.6,
    window: int = 12,
    min_gap: Optional[int] = None,
) -> np.ndarray:
    """Detect scene-change frames from a frame-size series.

    Compares the *median* frame size of the ``window`` frames before
    each candidate frame against the median of the ``window`` frames
    from it onward; a cut is declared where the relative change of the
    medians exceeds ``threshold``.  Medians over whole windows are
    robust against the per-frame coding noise that makes single-frame
    jump detectors fire constantly on high-variance video.  Candidate
    cuts closer than ``min_gap`` (default: ``window``) to the previous
    accepted cut are suppressed, keeping at most one detection per
    transition.

    A cut makes the jump statistic exceed the threshold over a *range*
    of nearby candidates (any window straddling the boundary shifts the
    after-median); detections are therefore grouped into runs separated
    by at least ``min_gap`` quiet frames, and each run reports the
    single candidate with the largest jump.

    Intended for intraframe-coded series (every frame coded alike); on
    I/B/P traces run it on the I-frame subsequence.

    Returns the 0-based indices of detected cuts.
    """
    arr = check_min_length(sizes, "sizes", 4)
    threshold = check_positive_float(threshold, "threshold")
    window = check_positive_int(window, "window")
    if min_gap is None:
        min_gap = window
    min_gap = check_positive_int(min_gap, "min_gap")

    if arr.size < 2 * window + 1:
        return np.asarray([], dtype=int)

    # Rolling medians via a strided window view (O(n w log w), fine for
    # the window sizes scene detection uses).
    from numpy.lib.stride_tricks import sliding_window_view

    windows = sliding_window_view(arr, window)
    medians = np.median(windows, axis=1)
    # For candidate t: before = median(arr[t-window:t]) = medians[t-window],
    # after = median(arr[t:t+window]) = medians[t].
    candidates = np.arange(window, arr.size - window + 1)
    before = medians[candidates - window]
    after = medians[candidates]
    valid = before > 0
    jump = np.zeros(candidates.size)
    jump[valid] = np.abs(after[valid] - before[valid]) / before[valid]

    above = jump > threshold
    if not np.any(above):
        return np.asarray([], dtype=int)
    hot_positions = candidates[above]
    hot_jumps = jump[above]
    # Group consecutive hot candidates (gaps < min_gap) into runs and
    # keep each run's peak.
    cuts = []
    run_start = 0
    for i in range(1, hot_positions.size + 1):
        end_of_run = (
            i == hot_positions.size
            or hot_positions[i] - hot_positions[i - 1] >= min_gap
        )
        if end_of_run:
            segment = slice(run_start, i)
            peak = int(
                hot_positions[segment][np.argmax(hot_jumps[segment])]
            )
            cuts.append(peak)
            run_start = i
    return np.asarray(cuts, dtype=int)


@dataclass(frozen=True)
class SceneStatistics:
    """Summary of detected scene structure.

    Attributes
    ----------
    num_scenes:
        Number of scenes (cuts + 1).
    mean_length, median_length, max_length:
        Scene lengths in frames.
    cut_indices:
        The detected cut positions.
    """

    num_scenes: int
    mean_length: float
    median_length: float
    max_length: float
    cut_indices: np.ndarray

    def mean_length_seconds(self, frame_rate: float = 30.0) -> float:
        """Mean scene length in seconds."""
        check_positive_float(frame_rate, "frame_rate")
        return self.mean_length / frame_rate


def scene_statistics(
    sizes,
    *,
    threshold: float = 0.6,
    window: int = 12,
    min_gap: Optional[int] = None,
) -> SceneStatistics:
    """Detect cuts and summarize the scene-length distribution."""
    arr = check_min_length(sizes, "sizes", 4)
    cuts = detect_scene_changes(
        arr,
        threshold=threshold,
        window=window,
        min_gap=min_gap,
    )
    boundaries = np.concatenate([[0], cuts, [arr.size]])
    lengths = np.diff(boundaries).astype(float)
    lengths = lengths[lengths > 0]
    if lengths.size == 0:
        raise EstimationError("no scenes detected")
    return SceneStatistics(
        num_scenes=int(lengths.size),
        mean_length=float(lengths.mean()),
        median_length=float(np.median(lengths)),
        max_length=float(lengths.max()),
        cut_indices=cuts,
    )
