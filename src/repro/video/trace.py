"""Video trace container.

A :class:`VideoTrace` couples a frame-size series (bytes per frame)
with its frame-type sequence and frame rate, and provides the views the
modeling pipeline needs: per-type subsequences (for the composite MPEG
model's per-type histograms), aggregate statistics, and cell-arrival
conversion for the queueing experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .._validation import check_1d_array, check_positive_float
from ..exceptions import ValidationError
from ..stats.summary import SeriesSummary, summarize
from .gop import FrameType, GopStructure

__all__ = ["VideoTrace"]


@dataclass(frozen=True)
class VideoTrace:
    """An (empirical or synthetic) VBR video trace.

    Attributes
    ----------
    sizes:
        Bytes per frame.
    frame_rate:
        Frames per second (the paper's trace runs at 30 fps).
    gop:
        The GOP structure; ``None`` for intraframe-only traces (every
        frame coded as I).
    name:
        Human-readable label used in reports.
    """

    sizes: np.ndarray
    frame_rate: float = 30.0
    gop: Optional[GopStructure] = None
    name: str = "trace"

    def __post_init__(self) -> None:
        sizes = check_1d_array(self.sizes, "sizes")
        if np.any(sizes < 0):
            raise ValidationError("frame sizes must be non-negative")
        object.__setattr__(self, "sizes", sizes)
        check_positive_float(self.frame_rate, "frame_rate")
        if self.gop is not None and not isinstance(self.gop, GopStructure):
            raise ValidationError(
                f"gop must be a GopStructure or None, got {self.gop!r}"
            )

    @property
    def num_frames(self) -> int:
        """Number of frames in the trace."""
        return int(self.sizes.size)

    @property
    def duration_seconds(self) -> float:
        """Trace duration in seconds."""
        return self.num_frames / self.frame_rate

    @property
    def mean_rate_bps(self) -> float:
        """Mean bit rate in bits per second."""
        return float(self.sizes.mean()) * 8.0 * self.frame_rate

    @property
    def peak_rate_bps(self) -> float:
        """Peak (single-frame) bit rate in bits per second."""
        return float(self.sizes.max()) * 8.0 * self.frame_rate

    @property
    def frame_types(self) -> np.ndarray:
        """Frame-type characters per frame ('I' everywhere if no GOP)."""
        if self.gop is None:
            return np.full(self.num_frames, "I")
        return self.gop.type_codes(self.num_frames)

    def sizes_of(self, frame_type: FrameType) -> np.ndarray:
        """Frame sizes of one type, in temporal order.

        For an intraframe-only trace, ``FrameType.I`` returns the whole
        series and other types are empty.
        """
        if self.gop is None:
            if frame_type is FrameType.I:
                return self.sizes.copy()
            return np.empty(0, dtype=float)
        mask = self.gop.mask(frame_type, self.num_frames)
        return self.sizes[mask]

    def type_summaries(self) -> Dict[str, SeriesSummary]:
        """Per-frame-type summary statistics."""
        out: Dict[str, SeriesSummary] = {}
        for ft in FrameType:
            values = self.sizes_of(ft)
            if values.size:
                out[ft.value] = summarize(values)
        return out

    def summary(self) -> SeriesSummary:
        """Whole-trace summary statistics."""
        return summarize(self.sizes)

    def cells_per_slot(self, cell_payload_bytes: int = 48) -> np.ndarray:
        """Convert frame sizes into ATM cell counts per frame slot.

        Each frame is segmented into fixed-payload cells (default: the
        48-byte ATM payload), all arriving within the frame's slot —
        the arrival model of the paper's §4 queueing study.
        """
        if cell_payload_bytes <= 0:
            raise ValidationError("cell_payload_bytes must be positive")
        return np.ceil(self.sizes / float(cell_payload_bytes))

    def normalized_sizes(self) -> np.ndarray:
        """Sizes divided by the mean (unit-mean arrival process).

        The paper's queueing figures use the *normalized* buffer size,
        i.e. buffer capacity measured in units of the mean arrival per
        slot; feeding the queue unit-mean arrivals makes buffer sizes
        directly comparable across models.
        """
        mean = float(self.sizes.mean())
        if mean <= 0:
            raise ValidationError("cannot normalize a zero-mean trace")
        return self.sizes / mean

    def to_slices(self, slices_per_frame: int = 15) -> np.ndarray:
        """Bytes per slice, splitting each frame evenly.

        The paper's trace carries 15 slices per frame (Table 1); slice-
        level series are what a cell-level multiplexer actually sees.
        Returns a 1-D array of length ``num_frames * slices_per_frame``
        whose per-frame sums equal the frame sizes.
        """
        if slices_per_frame <= 0:
            raise ValidationError("slices_per_frame must be positive")
        return np.repeat(
            self.sizes / float(slices_per_frame), slices_per_frame
        )

    def slice(self, start: int, stop: int) -> "VideoTrace":
        """Return a sub-trace of frames ``start:stop`` (GOP-aligned only
        when ``start`` is a multiple of the GOP period)."""
        if not 0 <= start < stop <= self.num_frames:
            raise ValidationError(
                f"invalid slice [{start}, {stop}) for {self.num_frames} frames"
            )
        if (
            self.gop is not None
            and start % self.gop.i_period != 0
        ):
            raise ValidationError(
                "slice start must be GOP-aligned (multiple of "
                f"{self.gop.i_period}) to keep frame types consistent"
            )
        return VideoTrace(
            sizes=self.sizes[start:stop],
            frame_rate=self.frame_rate,
            gop=self.gop,
            name=f"{self.name}[{start}:{stop}]",
        )

    def __repr__(self) -> str:
        gop_str = self.gop.pattern_string if self.gop else "intraframe"
        return (
            f"VideoTrace(name={self.name!r}, frames={self.num_frames}, "
            f"fps={self.frame_rate}, gop={gop_str})"
        )
