"""Table 1: parameters of the compressed video sequence.

The paper's Table 1 lists the parameters of the empirical "Last Action
Hero" trace.  :func:`trace_parameters` builds the equivalent table for
any :class:`~repro.video.trace.VideoTrace` (notably the synthetic
substitute), and :func:`paper_table1` returns the paper's values so the
Table 1 bench can print the two side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..exceptions import ValidationError
from .trace import VideoTrace

__all__ = ["TraceParameters", "trace_parameters", "paper_table1"]


@dataclass(frozen=True)
class TraceParameters:
    """A Table-1-style description of a compressed video sequence."""

    coder: str
    duration: str
    num_frames: int
    frame_dimensions: str
    resolution: str
    slice_rate: str
    frame_rate: str
    format: str

    def rows(self) -> Dict[str, str]:
        """Return the table rows as an ordered mapping (label -> value)."""
        return {
            "Coder": self.coder,
            "Duration": self.duration,
            "Number of frames": f"{self.num_frames:,}",
            "Frame dimensions": self.frame_dimensions,
            "Resolution": self.resolution,
            "Slice rate": self.slice_rate,
            "Frame rate": self.frame_rate,
            "Format": self.format,
        }


def _format_duration(seconds: float) -> str:
    """Format seconds as 'H hours, M minutes, S seconds'."""
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours} hours, {minutes} minutes, {secs} seconds"


def trace_parameters(
    trace: VideoTrace,
    *,
    coder: str = "Synthetic MPEG-1 (scene-oriented simulator)",
) -> TraceParameters:
    """Build a :class:`TraceParameters` record for ``trace``.

    Fixed fields (frame dimensions, resolution, slice rate, colorspace)
    mirror the paper's encoding setup, which the synthetic codec adopts
    by construction.
    """
    if not isinstance(trace, VideoTrace):
        raise ValidationError(
            f"trace must be a VideoTrace, got {type(trace).__name__}"
        )
    return TraceParameters(
        coder=coder,
        duration=_format_duration(trace.duration_seconds),
        num_frames=trace.num_frames,
        frame_dimensions="320x240 pixels",
        resolution="8 bits/pixel (3-band color)",
        slice_rate="15 per frame",
        frame_rate=f"{trace.frame_rate:g} per second",
        format="YUV colorspace, CCIR 601-2",
    )


def paper_table1() -> TraceParameters:
    """The paper's Table 1 for the empirical "Last Action Hero" trace."""
    return TraceParameters(
        coder="MPEG-1",
        duration="2 hours, 12 minutes, 36 seconds",
        num_frames=238_626,
        frame_dimensions="320x240 pixels",
        resolution="8 bits/pixel (3-band color)",
        slice_rate="15 per frame",
        frame_rate="30 per second",
        format="YUV colorspace, CCIR 601-2",
    )
