"""Trace file input/output.

Published VBR video traces (the Bellcore "Star Wars" trace and its
descendants) circulate in two ASCII shapes:

- **plain** — one frame size per line (bytes or bits);
- **typed** — ``<frame-type> <size>`` per line, with ``#`` comments.

Both are supported for reading and writing, so a downstream user can
run this library's pipeline directly on their own measured traces —
the only paper asset we had to substitute.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from .._validation import check_positive_float
from ..exceptions import ValidationError
from .gop import GopStructure
from .trace import VideoTrace

__all__ = ["load_trace", "save_trace", "infer_gop_pattern"]

PathLike = Union[str, "os.PathLike[str]"]


def infer_gop_pattern(frame_types: np.ndarray) -> Optional[GopStructure]:
    """Infer a repeating GOP pattern from a frame-type sequence.

    Looks for the smallest period starting with an I frame that the
    whole sequence repeats (the final partial GOP may be truncated).
    Returns ``None`` when no consistent repeating pattern exists.
    """
    types = np.asarray(frame_types)
    if types.size == 0 or types[0] != "I":
        return None
    i_positions = np.nonzero(types == "I")[0]
    if i_positions.size < 2:
        return None
    period = int(i_positions[1] - i_positions[0])
    pattern = "".join(types[:period])
    candidate = GopStructure(pattern)
    expected = candidate.type_codes(types.size)
    if np.array_equal(expected, types):
        return candidate
    return None


def load_trace(
    path: PathLike,
    *,
    frame_rate: float = 30.0,
    unit: str = "bytes",
    name: Optional[str] = None,
) -> VideoTrace:
    """Load a VBR trace from an ASCII file.

    Lines may be ``<size>`` or ``<frame-type> <size>``; blank lines and
    ``#`` comments are skipped.  When frame types are present and form
    a consistent repeating pattern, the trace carries the inferred
    :class:`~repro.video.gop.GopStructure`.

    Parameters
    ----------
    path:
        File to read.
    frame_rate:
        Frames per second of the recording.
    unit:
        ``"bytes"`` or ``"bits"`` (bits are converted to bytes).
    name:
        Trace label; defaults to the file stem.
    """
    check_positive_float(frame_rate, "frame_rate")
    if unit not in ("bytes", "bits"):
        raise ValidationError(
            f"unit must be 'bytes' or 'bits', got {unit!r}"
        )
    sizes = []
    types = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            try:
                if len(fields) == 1:
                    sizes.append(float(fields[0]))
                    types.append(None)
                elif len(fields) == 2:
                    types.append(fields[0].upper())
                    sizes.append(float(fields[1]))
                else:
                    raise ValueError("too many fields")
            except ValueError as exc:
                raise ValidationError(
                    f"{path}:{line_number}: cannot parse {raw!r}"
                ) from exc
    if not sizes:
        raise ValidationError(f"{path}: no frame records found")
    size_arr = np.asarray(sizes, dtype=float)
    if unit == "bits":
        size_arr = size_arr / 8.0

    gop = None
    if all(t is not None for t in types):
        gop = infer_gop_pattern(np.asarray(types))
    label = name if name is not None else os.path.splitext(
        os.path.basename(os.fspath(path))
    )[0]
    return VideoTrace(
        sizes=size_arr, frame_rate=frame_rate, gop=gop, name=label
    )


def save_trace(
    trace: VideoTrace,
    path: PathLike,
    *,
    include_types: bool = True,
    header: bool = True,
) -> None:
    """Write a trace to an ASCII file readable by :func:`load_trace`.

    Parameters
    ----------
    trace:
        The trace to save.
    path:
        Destination file.
    include_types:
        Write ``<type> <size>`` lines when the trace has a GOP
        structure (plain ``<size>`` lines otherwise).
    header:
        Prepend a ``#`` comment block with the trace metadata.
    """
    if not isinstance(trace, VideoTrace):
        raise ValidationError(
            f"trace must be a VideoTrace, got {type(trace).__name__}"
        )
    lines = []
    if header:
        lines.append(f"# trace: {trace.name}")
        lines.append(f"# frames: {trace.num_frames}")
        lines.append(f"# frame_rate: {trace.frame_rate:g}")
        if trace.gop is not None:
            lines.append(f"# gop: {trace.gop.pattern_string}")
        lines.append("# unit: bytes")
    if include_types and trace.gop is not None:
        for frame_type, size in zip(trace.frame_types, trace.sizes):
            lines.append(f"{frame_type} {size:.0f}")
    else:
        for size in trace.sizes:
            lines.append(f"{size:.0f}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
