"""VBR video substrate: GOP structure, traces, and the synthetic codec.

The paper's experiments consume a two-hour MPEG-1 trace of the movie
"Last Action Hero" (Table 1).  That trace is proprietary, so this
subpackage provides :class:`~repro.video.synthetic.SyntheticMPEGCodec`,
a scene-oriented synthetic codec simulator calibrated to the trace
statistics the paper reports (Hurst ~0.9, autocorrelation knee near lag
60, Gamma-body/heavy-tail marginals, IBBPBBPBBPBB GOP at a 12-frame I
period).  Every experiment touches the trace only through those
statistics, so the substitution preserves the behaviour under study.
"""

from .gop import FrameType, GopStructure
from .io import infer_gop_pattern, load_trace, save_trace
from .scenes import SceneStatistics, detect_scene_changes, scene_statistics
from .synthetic import SyntheticCodecConfig, SyntheticMPEGCodec
from .table1 import TraceParameters, paper_table1, trace_parameters
from .trace import VideoTrace

__all__ = [
    "FrameType",
    "GopStructure",
    "VideoTrace",
    "SyntheticCodecConfig",
    "SyntheticMPEGCodec",
    "TraceParameters",
    "trace_parameters",
    "paper_table1",
    "load_trace",
    "save_trace",
    "infer_gop_pattern",
    "detect_scene_changes",
    "scene_statistics",
    "SceneStatistics",
]
