"""Sharded aggregate engine for service-scale multiplexing.

The paper's §4 multiplexing experiments stop at a handful of
homogeneous sources; the regime where effective-bandwidth theory and
admission control actually operate is N in the 10^4-10^6 range.  This
module generates the *aggregate arrival process* of N heterogeneous
VBR sources — mixed Hurst exponents, mixed marginals, staggered GOP
phases — without ever materializing an ``(N, horizon)`` matrix:

- a :class:`SourceClass` describes one homogeneous sub-population
  (correlation model, marginal, optional periodic GOP rate pattern,
  generation backend) and its ``count``;
- a :class:`SourcePopulation` is the ordered mixture of classes, with
  the aggregate moments (mean rate, per-slot variance, dominant Hurst
  exponent) the capacity-planning theory consumes;
- :class:`ShardedAggregateModel` generates the population's aggregate
  feed in vectorized ``(batch_size, horizon)`` passes through the
  backend registry — reusing the shared spectral cache (Davies-Harte)
  or the blocked Hosking kernel — and reduces the batches into one
  ``(horizon,)`` multiplexer feed, so peak memory is
  O(batch_size x horizon) regardless of N.

Seeding contract (shard- and process-count invariance)
------------------------------------------------------
Sources are partitioned into fixed *generation blocks* of at most
``batch_size`` sources, enumerated class by class in population order;
block ``b`` draws from the ``b``-th child of
``SeedSequence(random_state)`` and blocks are always reduced in block
order.  ``shards=`` only groups contiguous blocks for reduction and
accounting, and ``processes=`` only moves block *generation* onto a
process pool — neither ever moves a block boundary, reseeds a stream,
or reorders an accumulation — so for a fixed seed the aggregate feed
is **bit-identical at any shard count and any process count** (the
same contract as the ``workers=`` invariance of the parallel runners).
``batch_size`` and the class order, by contrast, are part of the law:
changing either changes which stream a source draws from (same
distribution, different bits).

Why process pools cannot change the bits: each worker computes the
*per-block* partial sum ``y_b = sum over the block's rows`` — a pure
function of the block's spec and its spawned child generator, with no
cross-block arithmetic — and the parent folds ``total += y_b``
strictly in global block order through the streaming reducer of
:func:`~repro.simulation.parallel.reduce_tasks`.  The fold performs
exactly the additions of the serial path, in exactly the serial order,
so floating-point non-associativity never enters; the pool only
reorders wall-clock time.  Streaming the fold (a bounded in-flight
window, results released as they are folded) keeps feed memory
O(horizon), not O(blocks x horizon) or O(shards x horizon).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union
from uuid import uuid4

import numpy as np

from .._validation import check_choice, check_positive_int
from ..exceptions import NotFittedError, ValidationError
from ..marginals.parametric import MarginalDistribution
from ..marginals.transform import MarginalTransform
from ..processes import registry
from ..processes.correlation import CorrelationModel, FGNCorrelation
from ..processes.davies_harte import workspace_stats
from ..processes.registry import BackendArg
from ..processes.source import GaussianSource
from ..observability import ensure_context
from ..stats.random import RandomState, spawn_rngs
from .calibration import measure_attenuation_analytic
from .unified import UnifiedVBRModel

__all__ = [
    "SourceClass",
    "SourcePopulation",
    "AggregateFeed",
    "ShardedAggregateModel",
    "as_population",
]


class SourceClass:
    """One homogeneous sub-population of VBR sources.

    Parameters
    ----------
    name:
        Class label (used in metrics and error messages).
    correlation:
        Background correlation model of every source in the class; a
        plain float is treated as a Hurst exponent and wrapped in
        :class:`~repro.processes.correlation.FGNCorrelation`.
    marginal:
        Per-source marginal distribution (the eq. 7 transform target).
    count:
        Number of sources in the class.
    gop_pattern:
        Optional periodic rate multipliers of length >= 2 modelling
        GOP cyclostationarity.  Normalized internally to mean 1 so the
        class mean rate is unchanged.  Source ``j`` of the class is
        generated at phase ``j mod len(pattern)`` — phases are
        *staggered* across the class, which is what lets large
        aggregates smooth the GOP structure out.
    backend:
        Generation backend (registry name, ``"auto"``, or a built
        :class:`~repro.processes.source.GaussianSource`).
    backend_options:
        Extra factory options (e.g. ``block_size=`` for ``hosking``).
    """

    def __init__(
        self,
        name: str,
        *,
        correlation: Union[float, CorrelationModel],
        marginal: MarginalDistribution,
        count: int,
        gop_pattern: Optional[Sequence[float]] = None,
        backend: BackendArg = "auto",
        backend_options: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.name = str(name)
        if isinstance(correlation, (int, float, np.integer, np.floating)):
            correlation = FGNCorrelation(float(correlation))
        if not isinstance(correlation, CorrelationModel):
            raise ValidationError(
                "correlation must be a CorrelationModel or a Hurst "
                f"exponent, got {type(correlation).__name__}"
            )
        self.correlation = correlation
        if not isinstance(marginal, MarginalDistribution):
            raise ValidationError(
                "marginal must be a MarginalDistribution, got "
                f"{type(marginal).__name__}"
            )
        self.marginal = marginal
        self.count = check_positive_int(count, "count")
        if gop_pattern is not None:
            pattern = np.asarray(gop_pattern, dtype=float)
            if pattern.ndim != 1 or pattern.size < 2:
                raise ValidationError(
                    "gop_pattern must be one-dimensional with at least "
                    f"2 entries, got shape {pattern.shape}"
                )
            if not np.all(np.isfinite(pattern)) or np.any(pattern <= 0):
                raise ValidationError(
                    "gop_pattern entries must be finite and positive"
                )
            pattern = pattern / pattern.mean()
        else:
            pattern = None
        self.gop_pattern = pattern
        self.backend = backend
        self.backend_options: Dict[str, object] = dict(backend_options or {})
        self.transform = MarginalTransform(marginal)
        self._attenuation: Optional[float] = None

    @property
    def hurst(self) -> Optional[float]:
        """The class's Hurst exponent (``None`` for SRD correlations)."""
        return self.correlation.hurst

    @property
    def mean_rate(self) -> float:
        """Per-source mean arrival per slot (GOP pattern is mean-1)."""
        return float(self.marginal.mean)

    @property
    def slot_variance(self) -> float:
        """Phase-averaged per-slot variance of one source.

        Without a GOP pattern this is the marginal variance.  With a
        pattern ``g`` (mean 1) and uniformly staggered phases, a slot
        sees ``g_P * Y`` with ``P`` uniform over phases, so
        ``Var = E[g^2] E[Y^2] - E[Y]^2``.
        """
        sigma2 = float(self.marginal.variance)
        if self.gop_pattern is None:
            return sigma2
        mu = float(self.marginal.mean)
        g2 = float(np.mean(self.gop_pattern**2))
        return g2 * (sigma2 + mu**2) - mu**2

    @property
    def attenuation(self) -> float:
        """Analytic eq. 30 attenuation of the class transform (cached)."""
        if self._attenuation is None:
            self._attenuation = float(
                measure_attenuation_analytic(self.transform)
            )
        return self._attenuation

    def with_count(self, count: int) -> "SourceClass":
        """A copy of this class with a different ``count``."""
        clone = SourceClass.__new__(SourceClass)
        clone.__dict__.update(self.__dict__)
        clone.count = check_positive_int(count, "count")
        return clone

    def __repr__(self) -> str:
        return (
            f"SourceClass({self.name!r}, count={self.count}, "
            f"correlation={self.correlation!r}, "
            f"marginal={self.marginal!r})"
        )


class SourcePopulation:
    """An ordered mixture of :class:`SourceClass` sub-populations.

    The order of ``classes`` is part of the engine's seeding law (it
    fixes the global block enumeration); keep it stable across runs
    that must be comparable bit for bit.
    """

    def __init__(self, classes: Sequence[SourceClass]) -> None:
        classes = tuple(classes)
        if not classes:
            raise ValidationError("population needs at least one class")
        for klass in classes:
            if not isinstance(klass, SourceClass):
                raise ValidationError(
                    "classes must be SourceClass instances, got "
                    f"{type(klass).__name__}"
                )
        self.classes = classes

    @property
    def num_sources(self) -> int:
        """Total number of sources across all classes."""
        return sum(klass.count for klass in self.classes)

    @property
    def mean_rate(self) -> float:
        """Aggregate mean arrival per slot."""
        return float(
            sum(klass.count * klass.mean_rate for klass in self.classes)
        )

    @property
    def slot_variance(self) -> float:
        """Aggregate per-slot variance (independent sources add)."""
        return float(
            sum(klass.count * klass.slot_variance for klass in self.classes)
        )

    @property
    def variance_coefficient(self) -> float:
        """Norros' ``a``: per-slot variance over the mean rate."""
        return self.slot_variance / self.mean_rate

    @property
    def hurst(self) -> float:
        """Dominant (largest) Hurst exponent across classes.

        The slowest-decaying correlation dominates the aggregate's
        large-deviations behaviour, so the capacity-planning theory
        evaluates Norros' formulas at ``max_c H_c``.
        """
        values = [
            klass.hurst for klass in self.classes
            if klass.hurst is not None
        ]
        if not values:
            raise ValidationError(
                "no class defines a Hurst exponent; the population has "
                "no long-range-dependent component to plan capacity for"
            )
        return float(max(values))

    def scaled_to(self, num_sources: int) -> "SourcePopulation":
        """The same mixture rescaled to ``num_sources`` total sources.

        Counts are apportioned by the largest-remainder method
        (deterministic, ties broken by class order); classes whose
        share rounds to zero are dropped.
        """
        num_sources = check_positive_int(num_sources, "num_sources")
        total = self.num_sources
        raw = [
            klass.count * num_sources / total for klass in self.classes
        ]
        counts = [int(np.floor(share)) for share in raw]
        remainders = [share - count for share, count in zip(raw, counts)]
        short = num_sources - sum(counts)
        for index in sorted(
            range(len(counts)), key=lambda i: (-remainders[i], i)
        )[:short]:
            counts[index] += 1
        classes = [
            klass.with_count(count)
            for klass, count in zip(self.classes, counts)
            if count > 0
        ]
        return SourcePopulation(classes)

    def mixture_acf(self, lags: Sequence[float]) -> np.ndarray:
        """Predicted aggregate (foreground) ACF at ``lags``.

        Independent sources add covariances, so the aggregate ACF is
        the variance-weighted mixture of per-class foreground ACFs,
        each approximated by its analytic attenuation:
        ``rho(k) = sum_c n_c sigma_c^2 a_c r_c(k) / sum_c n_c
        sigma_c^2`` for ``k >= 1`` (exact when every transform is
        affine, e.g. Normal marginals, where ``a_c = 1``).  Classes
        with a GOP pattern are rejected — the cyclostationary gain has
        no stationary ACF to predict.
        """
        for klass in self.classes:
            if klass.gop_pattern is not None:
                raise ValidationError(
                    f"class {klass.name!r} has a gop_pattern; the "
                    "mixture ACF prediction is only defined for "
                    "stationary (pattern-free) classes"
                )
        lags_arr = np.atleast_1d(np.asarray(lags, dtype=float))
        weights = np.array(
            [
                klass.count * klass.marginal.variance
                for klass in self.classes
            ]
        )
        acfs = np.stack(
            [
                np.where(
                    lags_arr == 0,
                    1.0,
                    klass.attenuation
                    * np.asarray(klass.correlation(lags_arr), dtype=float),
                )
                for klass in self.classes
            ]
        )
        return np.asarray(
            (weights[:, None] * acfs).sum(axis=0) / weights.sum(),
            dtype=float,
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{klass.name}:{klass.count}" for klass in self.classes
        )
        return f"SourcePopulation({inner})"


def as_population(
    population: Union[SourcePopulation, SourceClass, Sequence[SourceClass]],
) -> SourcePopulation:
    """Normalize a population argument.

    Accepts a :class:`SourcePopulation`, a single :class:`SourceClass`,
    or a sequence of classes.
    """
    if isinstance(population, SourcePopulation):
        return population
    if isinstance(population, SourceClass):
        return SourcePopulation([population])
    return SourcePopulation(population)


@dataclass(frozen=True)
class AggregateFeed:
    """One generated aggregate arrival path.

    Attributes
    ----------
    arrivals:
        Aggregate work per slot, shape ``(horizon,)``.
    mean_rate:
        The population's aggregate mean arrival per slot (the
        normalization constant for the paper's buffer conventions).
    num_sources:
        Number of sources summed into the feed.
    shards:
        Shard count the generation was grouped into (accounting only;
        the arrivals are bit-identical at any value).
    processes:
        Resolved process-pool size the blocks were generated on
        (accounting only; the arrivals are bit-identical at any value).
    transport:
        Effective cross-process result transport the generation used:
        ``"inline"`` (no pool), ``"shm"``, or ``"pickle"`` (accounting
        only; the arrivals are bit-identical at any value).
    """

    arrivals: np.ndarray
    mean_rate: float
    num_sources: int
    shards: int
    processes: int = 1
    transport: str = "inline"

    @property
    def horizon(self) -> int:
        """Number of slots in the feed."""
        return int(self.arrivals.size)

    @property
    def normalized(self) -> np.ndarray:
        """Unit-mean arrivals (divide by the aggregate mean rate)."""
        return self.arrivals / self.mean_rate


#: One generation block: (class index, first in-class source, rows).
_Block = Tuple[int, int, int]

#: Feed dtypes the engine will accumulate into.  Per-block partial
#: sums are always computed in float64; float32 only stores the
#: running feed at half the memory (opt-in, not bit-comparable to the
#: float64 feed).
_FEED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))

#: Per-interpreter memo of resolved sources for the process-pooled
#: path, keyed by an opaque per-engine token.  A persistent shared pool
#: outlives any one engine, so worker state cannot ride a pool
#: initializer any more: every task instead carries its engine's
#: ``(key, classes)`` and each interpreter — worker or parent (for the
#: inline fallback of :func:`~repro.simulation.parallel.reduce_tasks`)
#: — resolves the sources once per engine via :func:`_sources_for`.
_WORKER_SOURCES: Dict[str, List[GaussianSource]] = {}

#: Engines memoized per interpreter before old entries are evicted.
_WORKER_SOURCES_CAP = 8


def _sources_for(
    key: str, classes: Tuple[SourceClass, ...]
) -> List[GaussianSource]:
    """Resolve (once per interpreter per engine) one source per class.

    Workers rebuild their sources from the registry instead of
    unpickling them — source instances hold per-interpreter caches
    (spectral tables, coefficient tables) guarded by locks that cannot
    cross a process boundary.  Resolution is deterministic, so every
    worker holds the same law as the parent.
    """
    sources = _WORKER_SOURCES.get(key)
    if sources is None:
        sources = [
            registry.resolve(
                klass.backend, klass.correlation, **klass.backend_options
            )
            for klass in classes
        ]
        while len(_WORKER_SOURCES) >= _WORKER_SOURCES_CAP:
            _WORKER_SOURCES.pop(next(iter(_WORKER_SOURCES)))
        _WORKER_SOURCES[key] = sources
    return sources


def _block_partial(
    klass: SourceClass,
    source: GaussianSource,
    horizon: int,
    offset: int,
    rows: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One generation block's ``(horizon,)`` partial sum (float64).

    This is the engine's unit of arithmetic: sample the block's
    background, push it through the class transform, apply staggered
    GOP gains, and sum the rows.  Both the serial and the pooled paths
    call exactly this function per block, which is what makes the feed
    bit-identical across ``processes=`` values.
    """
    x = source.sample(horizon, size=rows, random_state=rng)
    y = np.asarray(klass.transform(x), dtype=float)
    if klass.gop_pattern is not None:
        period = klass.gop_pattern.size
        phases = (offset + np.arange(rows)) % period
        indices = (phases[:, None] + np.arange(horizon)[None, :]) % period
        y = y * klass.gop_pattern[indices]
    return y.sum(axis=0)


def _block_partials_task(task) -> np.ndarray:
    """Pool task: stack the partial sums of a contiguous block run.

    ``task`` is ``(key, classes, horizon, specs, rngs)`` with one
    ``(class_index, offset, rows)`` spec and one spawned child
    generator per block.  The payload is self-contained — any
    interpreter (a fresh worker, a reused shared-pool worker, or the
    parent on the inline fallback) memoizes the engine's sources from
    ``(key, classes)`` — and the task is a pure function of it, so
    completion order cannot change results: the parent folds the rows
    in global block order.
    """
    key, classes, horizon, specs, rngs = task
    sources = _sources_for(key, classes)
    return np.stack([
        _block_partial(
            classes[class_index], sources[class_index],
            horizon, offset, rows, rng,
        )
        for (class_index, offset, rows), rng in zip(specs, rngs)
    ])


def _check_feed_dtype(dtype) -> np.dtype:
    """Validate the opt-in feed accumulator dtype."""
    if dtype is None:
        return _FEED_DTYPES[0]
    try:
        resolved = np.dtype(dtype)
    except TypeError:
        raise ValidationError(
            f"dtype must be float64 or float32, got {dtype!r}"
        ) from None
    if resolved not in _FEED_DTYPES:
        raise ValidationError(
            f"dtype must be float64 or float32, got {dtype!r}"
        )
    return resolved


class ShardedAggregateModel:
    """Batched, sharded generator of heterogeneous aggregate feeds.

    Parameters
    ----------
    population:
        A :class:`SourcePopulation` (or class / sequence of classes).
    batch_size:
        Sources generated per vectorized pass.  Part of the seeding
        law: peak memory and bit-stream both depend on it; shard count
        depends on neither.
    metrics:
        Optional :class:`~repro.observability.RunContext`; records the
        ``aggregate.*`` catalogue (sources/blocks/samples counters per
        class, per-shard timers).
    """

    def __init__(
        self,
        population: Union[
            SourcePopulation, SourceClass, Sequence[SourceClass]
        ],
        *,
        batch_size: int = 256,
        metrics=None,
    ) -> None:
        self.population = as_population(population)
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self._metrics = ensure_context(metrics)
        # Resolve one source per class up front (construction-time
        # capability validation; Davies-Harte classes then share one
        # spectral-cache entry across every block and every feed).
        self._sources = [
            registry.resolve(
                klass.backend,
                klass.correlation,
                metrics=self._metrics,
                **klass.backend_options,
            )
            for klass in self.population.classes
        ]
        # Opaque per-engine token for the worker-side source memo: a
        # persistent pool serves many engines over its lifetime, and
        # tasks carrying (key, classes) let each worker resolve this
        # engine's sources exactly once, not once per task.
        self._task_key = uuid4().hex

    @classmethod
    def from_unified(
        cls,
        model: UnifiedVBRModel,
        num_sources: int,
        *,
        batch_size: int = 256,
        backend: BackendArg = "auto",
        metrics=None,
    ) -> "ShardedAggregateModel":
        """Engine for ``num_sources`` copies of a fitted unified model.

        Each source draws from the model's compensated background
        correlation and is pushed through its fitted eq. 7 transform —
        the §4 homogeneous-multiplexing setup at engine scale.
        """
        if not isinstance(model, UnifiedVBRModel):
            raise ValidationError(
                "model must be a UnifiedVBRModel, got "
                f"{type(model).__name__}"
            )
        if model.background_ is None:
            raise NotFittedError(
                "model must be fitted before aggregation"
            )
        klass = SourceClass(
            "unified",
            correlation=model.background_,
            marginal=model.marginal_,
            count=num_sources,
            backend=backend,
        )
        return cls(klass, batch_size=batch_size, metrics=metrics)

    @property
    def num_sources(self) -> int:
        """Total number of sources in the population."""
        return self.population.num_sources

    def _blocks(self) -> List[_Block]:
        """Global generation-block list (class order, then offset)."""
        blocks: List[_Block] = []
        for class_index, klass in enumerate(self.population.classes):
            for offset in range(0, klass.count, self.batch_size):
                rows = min(self.batch_size, klass.count - offset)
                blocks.append((class_index, offset, rows))
        return blocks

    def generate(
        self,
        horizon: int,
        *,
        shards: int = 1,
        processes: Optional[int] = None,
        dtype=None,
        random_state: RandomState = None,
        transport: str = "auto",
        pool: str = "shared",
    ) -> AggregateFeed:
        """Generate one aggregate arrival path of length ``horizon``.

        ``shards`` groups the generation blocks into contiguous runs
        for reduction and accounting, and ``processes`` moves block
        generation onto a process pool (``None`` defers to the
        ``REPRO_PROCESSES`` environment variable, default 1 = in-line);
        the returned feed is bit-identical for any value of either
        (see the module seeding contract).  ``transport`` selects how
        partial sums travel back from pool workers (``"auto"`` —
        shared-memory segments for large results, pickle otherwise —
        ``"shm"``, or ``"pickle"``) and ``pool`` selects the
        process-wide reusable pool (``"shared"``, the default) or a
        private build-and-tear-down pool (``"per-call"``); both are
        pure wall-clock knobs, bit-identical in every combination (see
        :mod:`repro.simulation.parallel`).  ``dtype`` selects the feed
        accumulator precision: float64 (default) or, opt-in, float32 —
        partial sums are always computed in float64 and only the
        running feed is stored narrow, halving feed memory at scale
        (the float32 feed is *not* bit-comparable to the float64 one).
        Peak memory is O(batch_size x horizon) plus, when pooled, the
        bounded in-flight reduction window — never
        O(shards x horizon).
        """
        horizon = check_positive_int(horizon, "horizon")
        shards = check_positive_int(shards, "shards")
        check_choice(transport, "transport", ("auto", "shm", "pickle"))
        check_choice(pool, "pool", ("shared", "per-call"))
        # Lazy import: repro.simulation.__init__ pulls in the runner,
        # which imports this module back — resolving at call time keeps
        # the cycle out of import order.
        from ..simulation.parallel import resolve_processes
        from ..simulation.shm import shm_available

        procs = resolve_processes(processes)
        out_dtype = _check_feed_dtype(dtype)
        ctx = self._metrics
        blocks = self._blocks()
        children = spawn_rngs(random_state, len(blocks))
        total = np.zeros(horizon, dtype=out_dtype)
        pooled = procs > 1 and len(blocks) > 1
        effective_transport = "inline"
        if pooled:
            effective_transport = (
                "shm" if transport != "pickle" and shm_available()
                else "pickle"
            )
        ctx.set("aggregate.batch_size", float(self.batch_size))
        ctx.set("aggregate.horizon", float(horizon))
        ctx.set("aggregate.processes", float(procs))
        workspace_before = workspace_stats()
        start = time.perf_counter()
        with ctx.time("aggregate.generate_seconds"):
            if pooled:
                self._generate_pooled(
                    total, blocks, children, shards, procs, transport, pool
                )
            else:
                self._generate_serial(total, blocks, children, shards)
        elapsed = time.perf_counter() - start
        if elapsed > 0.0:
            ctx.set(
                "aggregate.throughput_source_slots_per_s",
                self.num_sources * horizon / elapsed,
            )
        workspace_after = workspace_stats()
        hits = workspace_after["hits"] - workspace_before["hits"]
        builds = workspace_after["builds"] - workspace_before["builds"]
        if hits:
            ctx.inc("spectral.workspace_hits", hits)
        if builds:
            ctx.inc("spectral.workspace_builds", builds)
        for klass in self.population.classes:
            ctx.inc(
                "aggregate.sources",
                klass.count,
                source_class=klass.name,
            )
            ctx.inc("aggregate.samples", klass.count * horizon)
        return AggregateFeed(
            arrivals=total,
            mean_rate=self.population.mean_rate,
            num_sources=self.num_sources,
            shards=shards,
            processes=procs,
            transport=effective_transport,
        )

    def _generate_serial(
        self,
        total: np.ndarray,
        blocks: List[_Block],
        children: List[np.random.Generator],
        shards: int,
    ) -> None:
        """In-line block loop (the pooled path's arithmetic reference)."""
        ctx = self._metrics
        classes = self.population.classes
        for shard_blocks in np.array_split(np.arange(len(blocks)), shards):
            if shard_blocks.size:
                ctx.inc("aggregate.shards")
            with ctx.time("aggregate.shard_seconds"):
                for block_id in shard_blocks:
                    class_index, offset, rows = blocks[block_id]
                    total += _block_partial(
                        classes[class_index],
                        self._sources[class_index],
                        total.size,
                        offset,
                        rows,
                        children[block_id],
                    )
                    ctx.inc(
                        "aggregate.blocks",
                        source_class=classes[class_index].name,
                    )

    def _generate_pooled(
        self,
        total: np.ndarray,
        blocks: List[_Block],
        children: List[np.random.Generator],
        shards: int,
        procs: int,
        transport: str,
        pool: str,
    ) -> None:
        """Process-pooled block generation with a streaming ordered fold.

        Contiguous block runs ship to the pool as tasks; each worker
        returns the run's stacked per-block partial sums and the parent
        folds the rows into ``total`` strictly in global block order
        through :func:`~repro.simulation.parallel.reduce_tasks`, so the
        additions are exactly the serial path's, in the serial order.
        ``pool="shared"`` serves every shard from the process-wide
        reusable pool via
        :func:`~repro.simulation.parallel.pool_scope`; ``"per-call"``
        builds a private pool for this generation, the pre-runtime
        behaviour.  ``transport`` picks the partial-sum return path
        (shared-memory descriptors vs pickle); the fold below never
        retains the transient zero-copy views it is handed.
        """
        from concurrent.futures import ProcessPoolExecutor

        from ..simulation.parallel import (
            _prewarm_worker,
            pool_scope,
            reduce_tasks,
        )

        ctx = self._metrics
        classes = self.population.classes
        instance_backed = [
            klass.name for klass in classes
            if isinstance(klass.backend, GaussianSource)
        ]
        if instance_backed:
            raise ValidationError(
                "processes > 1 requires registry-name backends (pool "
                "workers re-resolve sources; built source instances "
                "hold per-interpreter caches that cannot cross a "
                "process boundary) — classes with instance backends: "
                + ", ".join(repr(name) for name in instance_backed)
            )
        # Parent-side memo too: a shard that collapses to one task runs
        # through reduce_tasks' inline fallback in this process and
        # must find the already-resolved sources.
        _WORKER_SOURCES[self._task_key] = list(self._sources)
        classes = tuple(classes)
        horizon = total.size
        reduction_bytes = 0
        if pool == "shared":
            scope = pool_scope(procs, metrics=ctx)
        else:
            scope = ProcessPoolExecutor(
                max_workers=procs, initializer=_prewarm_worker
            )
        with scope as pool_exec:
            for shard_blocks in np.array_split(
                np.arange(len(blocks)), shards
            ):
                if shard_blocks.size:
                    ctx.inc("aggregate.shards")
                with ctx.time("aggregate.shard_seconds"):
                    if not shard_blocks.size:
                        continue
                    # A few tasks per worker amortizes pickling without
                    # starving the pool; the cap bounds task payloads.
                    per_task = max(
                        1,
                        min(32, -(-int(shard_blocks.size) // (4 * procs))),
                    )
                    tasks = []
                    task_specs = []
                    for low in range(0, shard_blocks.size, per_task):
                        ids = shard_blocks[low:low + per_task]
                        specs = tuple(blocks[i] for i in ids)
                        tasks.append((
                            self._task_key,
                            classes,
                            horizon,
                            specs,
                            tuple(children[i] for i in ids),
                        ))
                        task_specs.append(specs)

                    def fold(partials, index):
                        nonlocal reduction_bytes, total
                        partials = np.asarray(partials)
                        reduction_bytes += partials.nbytes
                        for row, (class_index, _offset, _rows) in zip(
                            partials, task_specs[index]
                        ):
                            total += row
                            ctx.inc(
                                "aggregate.blocks",
                                source_class=classes[class_index].name,
                            )

                    reduce_tasks(
                        _block_partials_task,
                        tasks,
                        fold,
                        workers=procs,
                        kind="process",
                        executor=pool_exec,
                        metrics=ctx,
                        prefix="aggregate_pool",
                        transport=transport,
                    )
        ctx.inc("aggregate.reduction_bytes", reduction_bytes)

    def __repr__(self) -> str:
        return (
            f"ShardedAggregateModel({self.population!r}, "
            f"batch_size={self.batch_size})"
        )
