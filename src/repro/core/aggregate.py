"""Sharded aggregate engine for service-scale multiplexing.

The paper's §4 multiplexing experiments stop at a handful of
homogeneous sources; the regime where effective-bandwidth theory and
admission control actually operate is N in the 10^4-10^6 range.  This
module generates the *aggregate arrival process* of N heterogeneous
VBR sources — mixed Hurst exponents, mixed marginals, staggered GOP
phases — without ever materializing an ``(N, horizon)`` matrix:

- a :class:`SourceClass` describes one homogeneous sub-population
  (correlation model, marginal, optional periodic GOP rate pattern,
  generation backend) and its ``count``;
- a :class:`SourcePopulation` is the ordered mixture of classes, with
  the aggregate moments (mean rate, per-slot variance, dominant Hurst
  exponent) the capacity-planning theory consumes;
- :class:`ShardedAggregateModel` generates the population's aggregate
  feed in vectorized ``(batch_size, horizon)`` passes through the
  backend registry — reusing the shared spectral cache (Davies-Harte)
  or the blocked Hosking kernel — and reduces the batches into one
  ``(horizon,)`` multiplexer feed, so peak memory is
  O(batch_size x horizon) regardless of N.

Seeding contract (shard-count invariance)
-----------------------------------------
Sources are partitioned into fixed *generation blocks* of at most
``batch_size`` sources, enumerated class by class in population order;
block ``b`` draws from the ``b``-th child of
``SeedSequence(random_state)`` and blocks are always reduced in block
order.  ``shards=`` only groups contiguous blocks for reduction and
accounting — it never moves a block boundary, reseeds a stream, or
reorders an accumulation — so for a fixed seed the aggregate feed is
**bit-identical at any shard count** (the same contract as the
``workers=`` invariance of the parallel runners).  ``batch_size`` and
the class order, by contrast, are part of the law: changing either
changes which stream a source draws from (same distribution, different
bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import NotFittedError, ValidationError
from ..marginals.parametric import MarginalDistribution
from ..marginals.transform import MarginalTransform
from ..processes import registry
from ..processes.correlation import CorrelationModel, FGNCorrelation
from ..processes.registry import BackendArg
from ..observability import ensure_context
from ..stats.random import RandomState, spawn_rngs
from .calibration import measure_attenuation_analytic
from .unified import UnifiedVBRModel

__all__ = [
    "SourceClass",
    "SourcePopulation",
    "AggregateFeed",
    "ShardedAggregateModel",
    "as_population",
]


class SourceClass:
    """One homogeneous sub-population of VBR sources.

    Parameters
    ----------
    name:
        Class label (used in metrics and error messages).
    correlation:
        Background correlation model of every source in the class; a
        plain float is treated as a Hurst exponent and wrapped in
        :class:`~repro.processes.correlation.FGNCorrelation`.
    marginal:
        Per-source marginal distribution (the eq. 7 transform target).
    count:
        Number of sources in the class.
    gop_pattern:
        Optional periodic rate multipliers of length >= 2 modelling
        GOP cyclostationarity.  Normalized internally to mean 1 so the
        class mean rate is unchanged.  Source ``j`` of the class is
        generated at phase ``j mod len(pattern)`` — phases are
        *staggered* across the class, which is what lets large
        aggregates smooth the GOP structure out.
    backend:
        Generation backend (registry name, ``"auto"``, or a built
        :class:`~repro.processes.source.GaussianSource`).
    backend_options:
        Extra factory options (e.g. ``block_size=`` for ``hosking``).
    """

    def __init__(
        self,
        name: str,
        *,
        correlation: Union[float, CorrelationModel],
        marginal: MarginalDistribution,
        count: int,
        gop_pattern: Optional[Sequence[float]] = None,
        backend: BackendArg = "auto",
        backend_options: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.name = str(name)
        if isinstance(correlation, (int, float, np.integer, np.floating)):
            correlation = FGNCorrelation(float(correlation))
        if not isinstance(correlation, CorrelationModel):
            raise ValidationError(
                "correlation must be a CorrelationModel or a Hurst "
                f"exponent, got {type(correlation).__name__}"
            )
        self.correlation = correlation
        if not isinstance(marginal, MarginalDistribution):
            raise ValidationError(
                "marginal must be a MarginalDistribution, got "
                f"{type(marginal).__name__}"
            )
        self.marginal = marginal
        self.count = check_positive_int(count, "count")
        if gop_pattern is not None:
            pattern = np.asarray(gop_pattern, dtype=float)
            if pattern.ndim != 1 or pattern.size < 2:
                raise ValidationError(
                    "gop_pattern must be one-dimensional with at least "
                    f"2 entries, got shape {pattern.shape}"
                )
            if not np.all(np.isfinite(pattern)) or np.any(pattern <= 0):
                raise ValidationError(
                    "gop_pattern entries must be finite and positive"
                )
            pattern = pattern / pattern.mean()
        else:
            pattern = None
        self.gop_pattern = pattern
        self.backend = backend
        self.backend_options: Dict[str, object] = dict(backend_options or {})
        self.transform = MarginalTransform(marginal)
        self._attenuation: Optional[float] = None

    @property
    def hurst(self) -> Optional[float]:
        """The class's Hurst exponent (``None`` for SRD correlations)."""
        return self.correlation.hurst

    @property
    def mean_rate(self) -> float:
        """Per-source mean arrival per slot (GOP pattern is mean-1)."""
        return float(self.marginal.mean)

    @property
    def slot_variance(self) -> float:
        """Phase-averaged per-slot variance of one source.

        Without a GOP pattern this is the marginal variance.  With a
        pattern ``g`` (mean 1) and uniformly staggered phases, a slot
        sees ``g_P * Y`` with ``P`` uniform over phases, so
        ``Var = E[g^2] E[Y^2] - E[Y]^2``.
        """
        sigma2 = float(self.marginal.variance)
        if self.gop_pattern is None:
            return sigma2
        mu = float(self.marginal.mean)
        g2 = float(np.mean(self.gop_pattern**2))
        return g2 * (sigma2 + mu**2) - mu**2

    @property
    def attenuation(self) -> float:
        """Analytic eq. 30 attenuation of the class transform (cached)."""
        if self._attenuation is None:
            self._attenuation = float(
                measure_attenuation_analytic(self.transform)
            )
        return self._attenuation

    def with_count(self, count: int) -> "SourceClass":
        """A copy of this class with a different ``count``."""
        clone = SourceClass.__new__(SourceClass)
        clone.__dict__.update(self.__dict__)
        clone.count = check_positive_int(count, "count")
        return clone

    def __repr__(self) -> str:
        return (
            f"SourceClass({self.name!r}, count={self.count}, "
            f"correlation={self.correlation!r}, "
            f"marginal={self.marginal!r})"
        )


class SourcePopulation:
    """An ordered mixture of :class:`SourceClass` sub-populations.

    The order of ``classes`` is part of the engine's seeding law (it
    fixes the global block enumeration); keep it stable across runs
    that must be comparable bit for bit.
    """

    def __init__(self, classes: Sequence[SourceClass]) -> None:
        classes = tuple(classes)
        if not classes:
            raise ValidationError("population needs at least one class")
        for klass in classes:
            if not isinstance(klass, SourceClass):
                raise ValidationError(
                    "classes must be SourceClass instances, got "
                    f"{type(klass).__name__}"
                )
        self.classes = classes

    @property
    def num_sources(self) -> int:
        """Total number of sources across all classes."""
        return sum(klass.count for klass in self.classes)

    @property
    def mean_rate(self) -> float:
        """Aggregate mean arrival per slot."""
        return float(
            sum(klass.count * klass.mean_rate for klass in self.classes)
        )

    @property
    def slot_variance(self) -> float:
        """Aggregate per-slot variance (independent sources add)."""
        return float(
            sum(klass.count * klass.slot_variance for klass in self.classes)
        )

    @property
    def variance_coefficient(self) -> float:
        """Norros' ``a``: per-slot variance over the mean rate."""
        return self.slot_variance / self.mean_rate

    @property
    def hurst(self) -> float:
        """Dominant (largest) Hurst exponent across classes.

        The slowest-decaying correlation dominates the aggregate's
        large-deviations behaviour, so the capacity-planning theory
        evaluates Norros' formulas at ``max_c H_c``.
        """
        values = [
            klass.hurst for klass in self.classes
            if klass.hurst is not None
        ]
        if not values:
            raise ValidationError(
                "no class defines a Hurst exponent; the population has "
                "no long-range-dependent component to plan capacity for"
            )
        return float(max(values))

    def scaled_to(self, num_sources: int) -> "SourcePopulation":
        """The same mixture rescaled to ``num_sources`` total sources.

        Counts are apportioned by the largest-remainder method
        (deterministic, ties broken by class order); classes whose
        share rounds to zero are dropped.
        """
        num_sources = check_positive_int(num_sources, "num_sources")
        total = self.num_sources
        raw = [
            klass.count * num_sources / total for klass in self.classes
        ]
        counts = [int(np.floor(share)) for share in raw]
        remainders = [share - count for share, count in zip(raw, counts)]
        short = num_sources - sum(counts)
        for index in sorted(
            range(len(counts)), key=lambda i: (-remainders[i], i)
        )[:short]:
            counts[index] += 1
        classes = [
            klass.with_count(count)
            for klass, count in zip(self.classes, counts)
            if count > 0
        ]
        return SourcePopulation(classes)

    def mixture_acf(self, lags: Sequence[float]) -> np.ndarray:
        """Predicted aggregate (foreground) ACF at ``lags``.

        Independent sources add covariances, so the aggregate ACF is
        the variance-weighted mixture of per-class foreground ACFs,
        each approximated by its analytic attenuation:
        ``rho(k) = sum_c n_c sigma_c^2 a_c r_c(k) / sum_c n_c
        sigma_c^2`` for ``k >= 1`` (exact when every transform is
        affine, e.g. Normal marginals, where ``a_c = 1``).  Classes
        with a GOP pattern are rejected — the cyclostationary gain has
        no stationary ACF to predict.
        """
        for klass in self.classes:
            if klass.gop_pattern is not None:
                raise ValidationError(
                    f"class {klass.name!r} has a gop_pattern; the "
                    "mixture ACF prediction is only defined for "
                    "stationary (pattern-free) classes"
                )
        lags_arr = np.atleast_1d(np.asarray(lags, dtype=float))
        weights = np.array(
            [
                klass.count * klass.marginal.variance
                for klass in self.classes
            ]
        )
        acfs = np.stack(
            [
                np.where(
                    lags_arr == 0,
                    1.0,
                    klass.attenuation
                    * np.asarray(klass.correlation(lags_arr), dtype=float),
                )
                for klass in self.classes
            ]
        )
        return np.asarray(
            (weights[:, None] * acfs).sum(axis=0) / weights.sum(),
            dtype=float,
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{klass.name}:{klass.count}" for klass in self.classes
        )
        return f"SourcePopulation({inner})"


def as_population(
    population: Union[SourcePopulation, SourceClass, Sequence[SourceClass]],
) -> SourcePopulation:
    """Normalize a population argument.

    Accepts a :class:`SourcePopulation`, a single :class:`SourceClass`,
    or a sequence of classes.
    """
    if isinstance(population, SourcePopulation):
        return population
    if isinstance(population, SourceClass):
        return SourcePopulation([population])
    return SourcePopulation(population)


@dataclass(frozen=True)
class AggregateFeed:
    """One generated aggregate arrival path.

    Attributes
    ----------
    arrivals:
        Aggregate work per slot, shape ``(horizon,)``.
    mean_rate:
        The population's aggregate mean arrival per slot (the
        normalization constant for the paper's buffer conventions).
    num_sources:
        Number of sources summed into the feed.
    shards:
        Shard count the generation was grouped into (accounting only;
        the arrivals are bit-identical at any value).
    """

    arrivals: np.ndarray
    mean_rate: float
    num_sources: int
    shards: int

    @property
    def horizon(self) -> int:
        """Number of slots in the feed."""
        return int(self.arrivals.size)

    @property
    def normalized(self) -> np.ndarray:
        """Unit-mean arrivals (divide by the aggregate mean rate)."""
        return self.arrivals / self.mean_rate


#: One generation block: (class index, first in-class source, rows).
_Block = Tuple[int, int, int]


class ShardedAggregateModel:
    """Batched, sharded generator of heterogeneous aggregate feeds.

    Parameters
    ----------
    population:
        A :class:`SourcePopulation` (or class / sequence of classes).
    batch_size:
        Sources generated per vectorized pass.  Part of the seeding
        law: peak memory and bit-stream both depend on it; shard count
        depends on neither.
    metrics:
        Optional :class:`~repro.observability.RunContext`; records the
        ``aggregate.*`` catalogue (sources/blocks/samples counters per
        class, per-shard timers).
    """

    def __init__(
        self,
        population: Union[
            SourcePopulation, SourceClass, Sequence[SourceClass]
        ],
        *,
        batch_size: int = 256,
        metrics=None,
    ) -> None:
        self.population = as_population(population)
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self._metrics = ensure_context(metrics)
        # Resolve one source per class up front (construction-time
        # capability validation; Davies-Harte classes then share one
        # spectral-cache entry across every block and every feed).
        self._sources = [
            registry.resolve(
                klass.backend,
                klass.correlation,
                metrics=self._metrics,
                **klass.backend_options,
            )
            for klass in self.population.classes
        ]

    @classmethod
    def from_unified(
        cls,
        model: UnifiedVBRModel,
        num_sources: int,
        *,
        batch_size: int = 256,
        backend: BackendArg = "auto",
        metrics=None,
    ) -> "ShardedAggregateModel":
        """Engine for ``num_sources`` copies of a fitted unified model.

        Each source draws from the model's compensated background
        correlation and is pushed through its fitted eq. 7 transform —
        the §4 homogeneous-multiplexing setup at engine scale.
        """
        if not isinstance(model, UnifiedVBRModel):
            raise ValidationError(
                "model must be a UnifiedVBRModel, got "
                f"{type(model).__name__}"
            )
        if model.background_ is None:
            raise NotFittedError(
                "model must be fitted before aggregation"
            )
        klass = SourceClass(
            "unified",
            correlation=model.background_,
            marginal=model.marginal_,
            count=num_sources,
            backend=backend,
        )
        return cls(klass, batch_size=batch_size, metrics=metrics)

    @property
    def num_sources(self) -> int:
        """Total number of sources in the population."""
        return self.population.num_sources

    def _blocks(self) -> List[_Block]:
        """Global generation-block list (class order, then offset)."""
        blocks: List[_Block] = []
        for class_index, klass in enumerate(self.population.classes):
            for offset in range(0, klass.count, self.batch_size):
                rows = min(self.batch_size, klass.count - offset)
                blocks.append((class_index, offset, rows))
        return blocks

    def generate(
        self,
        horizon: int,
        *,
        shards: int = 1,
        random_state: RandomState = None,
    ) -> AggregateFeed:
        """Generate one aggregate arrival path of length ``horizon``.

        ``shards`` groups the generation blocks into contiguous runs
        for reduction and accounting; the returned feed is
        bit-identical for any value (see the module seeding contract).
        Peak memory is O(batch_size x horizon).
        """
        horizon = check_positive_int(horizon, "horizon")
        shards = check_positive_int(shards, "shards")
        ctx = self._metrics
        blocks = self._blocks()
        children = spawn_rngs(random_state, len(blocks))
        total = np.zeros(horizon, dtype=float)
        ctx.set("aggregate.batch_size", float(self.batch_size))
        ctx.set("aggregate.horizon", float(horizon))
        with ctx.time("aggregate.generate_seconds"):
            for shard_blocks in np.array_split(
                np.arange(len(blocks)), shards
            ):
                if shard_blocks.size:
                    ctx.inc("aggregate.shards")
                with ctx.time("aggregate.shard_seconds"):
                    for block_id in shard_blocks:
                        class_index, offset, rows = blocks[block_id]
                        self._accumulate_block(
                            total,
                            class_index,
                            offset,
                            rows,
                            children[block_id],
                        )
        for klass in self.population.classes:
            ctx.inc(
                "aggregate.sources",
                klass.count,
                source_class=klass.name,
            )
            ctx.inc("aggregate.samples", klass.count * horizon)
        return AggregateFeed(
            arrivals=total,
            mean_rate=self.population.mean_rate,
            num_sources=self.num_sources,
            shards=shards,
        )

    def _accumulate_block(
        self,
        total: np.ndarray,
        class_index: int,
        offset: int,
        rows: int,
        rng: np.random.Generator,
    ) -> None:
        """Generate one ``(rows, horizon)`` block and reduce it."""
        klass = self.population.classes[class_index]
        horizon = total.size
        x = self._sources[class_index].sample(
            horizon, size=rows, random_state=rng
        )
        y = np.asarray(klass.transform(x), dtype=float)
        if klass.gop_pattern is not None:
            period = klass.gop_pattern.size
            phases = (offset + np.arange(rows)) % period
            indices = (phases[:, None] + np.arange(horizon)[None, :]) % period
            y = y * klass.gop_pattern[indices]
        total += y.sum(axis=0)
        self._metrics.inc(
            "aggregate.blocks", source_class=klass.name
        )

    def __repr__(self) -> str:
        return (
            f"ShardedAggregateModel({self.population!r}, "
            f"batch_size={self.batch_size})"
        )
