"""The unified VBR video model (paper §3.1-§3.2).

:class:`UnifiedVBRModel` implements the paper's four-step pipeline:

1. **Hurst estimation** — variance-time and R/S analyses of the trace,
   combined into one working estimate (the paper averaged its 0.89 and
   0.92 readings into ``H = 0.9``).
2. **Autocorrelation modeling** — the sample ACF is fitted with the
   composite SRD+LRD structure of eq. 10-13, the power-law exponent
   pinned to ``2 - 2H``.
3. **Attenuation measurement** — the factor ``a`` by which the marginal
   transform shrinks the ACF (pilot-simulation or analytic).
4. **Compensation and generation** — the background correlation is the
   fitted model divided by ``a`` (tail) with the eq. 14 exponential
   head, fed to Hosking's method (or Davies-Harte for long traces),
   then pushed through the histogram-inversion transform of eq. 7.

The fitted model also exposes the building blocks individually
(marginal, transform, background correlation) for the queueing and
importance-sampling experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import NotFittedError, ValidationError
from ..observability import ensure_context
from ..estimators.acf import sample_acf
from ..estimators.acf_fit import AcfFit, fit_composite_acf
from ..estimators.rs_analysis import RsEstimate, rs_estimate
from ..estimators.variance_time import (
    VarianceTimeEstimate,
    variance_time_estimate,
)
from ..marginals.empirical import EmpiricalDistribution
from ..marginals.fitting import fit_gamma_pareto
from ..marginals.parametric import MarginalDistribution
from ..marginals.transform import MarginalTransform
from ..processes import registry
from ..processes.correlation import CompositeCorrelation
from ..processes.registry import BackendArg, merge_backend_args
from ..processes.spectral_cache import spectral_cache_metrics
from ..stats.random import RandomState
from ..video.trace import VideoTrace
from .calibration import (
    invert_transform_acf,
    measure_attenuation_analytic,
    measure_attenuation_pilot,
)

__all__ = ["UnifiedVBRModel"]


class UnifiedVBRModel:
    """Self-similar VBR video model with explicit SRD + LRD structure.

    Parameters
    ----------
    max_lag:
        Number of ACF lags estimated and fitted (the paper works with
        lags up to ~500).
    knee:
        Fix the SRD/LRD knee lag; ``None`` auto-detects it.
    num_exponentials:
        Exponential terms in the SRD mixture (paper: 1).
    histogram_bins:
        Bins of the marginal histogram inversion.
    marginal_method:
        ``"histogram"`` (the paper's piecewise-linear histogram
        inversion), ``"exact"`` (raw ECDF inversion: synthetic values
        are resamples of the observed ones), or ``"gamma-pareto"``
        (the parametric Gamma-body/Pareto-tail model of Garrett &
        Willinger — the paper's stated alternative to direct
        inversion; can extrapolate beyond the observed maximum).
    attenuation_method:
        ``"pilot"`` (the paper's Step 3 simulation) or ``"analytic"``
        (Appendix A eq. 30 via quadrature).
    background_method:
        How the background correlation is derived from the fitted
        foreground ACF:

        - ``"compensated"`` (the paper's Step 4): divide the tail by
          the scalar attenuation factor and solve eq. 14 for the
          exponential head;
        - ``"hermite-inverse"``: invert the transform's exact
          Hermite-expansion effect lag by lag and refit the composite
          model to the inverted sequence — the "automatic search for
          the best background autocorrelation structure" the paper
          leaves as future work.
    hurst_override:
        Skip Step 1 and use this Hurst value (the paper rounds its two
        estimates to 0.9; pass 0.9 to reproduce that choice exactly).
    metrics:
        Optional :class:`~repro.observability.RunContext`; records
        per-step fit timers (``model.fit_seconds`` labelled by pipeline
        step) and the fitted ``model.hurst`` / ``model.attenuation``
        gauges.  Observational only — never touches a random stream.

    Examples
    --------
    >>> from repro.video import SyntheticCodecConfig, SyntheticMPEGCodec
    >>> trace = SyntheticMPEGCodec(
    ...     SyntheticCodecConfig.intraframe_paper_like(num_frames=50_000)
    ... ).generate(1)
    >>> model = UnifiedVBRModel().fit(trace)
    >>> synthetic = model.generate(10_000, random_state=2)
    """

    def __init__(
        self,
        *,
        max_lag: int = 500,
        knee: Optional[int] = None,
        num_exponentials: int = 1,
        histogram_bins: int = 200,
        marginal_method: str = "histogram",
        attenuation_method: str = "pilot",
        background_method: str = "compensated",
        hurst_override: Optional[float] = None,
        fit_nugget: bool = True,
        metrics=None,
    ) -> None:
        self._metrics = ensure_context(metrics)
        self.max_lag = check_positive_int(max_lag, "max_lag")
        self.knee = knee
        self.num_exponentials = check_positive_int(
            num_exponentials, "num_exponentials"
        )
        self.histogram_bins = check_positive_int(
            histogram_bins, "histogram_bins"
        )
        if marginal_method not in ("histogram", "exact", "gamma-pareto"):
            raise ValidationError(
                "marginal_method must be 'histogram', 'exact', or "
                f"'gamma-pareto', got {marginal_method!r}"
            )
        self.marginal_method = marginal_method
        if attenuation_method not in ("pilot", "analytic"):
            raise ValidationError(
                "attenuation_method must be 'pilot' or 'analytic', got "
                f"{attenuation_method!r}"
            )
        self.attenuation_method = attenuation_method
        if background_method not in ("compensated", "hermite-inverse"):
            raise ValidationError(
                "background_method must be 'compensated' or "
                f"'hermite-inverse', got {background_method!r}"
            )
        self.background_method = background_method
        self.hurst_override = hurst_override
        self.fit_nugget = bool(fit_nugget)
        # Fitted state (None until fit()).
        self.marginal_: Optional[MarginalDistribution] = None
        self.transform_: Optional[MarginalTransform] = None
        self.variance_time_: Optional[VarianceTimeEstimate] = None
        self.rs_: Optional[RsEstimate] = None
        self.hurst_: Optional[float] = None
        self.empirical_acf_: Optional[np.ndarray] = None
        self.acf_fit_: Optional[AcfFit] = None
        self.attenuation_: Optional[float] = None
        self.background_: Optional[CompositeCorrelation] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        trace: Union[VideoTrace, Sequence[float]],
        *,
        random_state: RandomState = None,
    ) -> "UnifiedVBRModel":
        """Fit the model to a trace (Steps 1-4 of §3.2).

        ``trace`` may be a :class:`~repro.video.trace.VideoTrace` or a
        plain frame-size series.  ``random_state`` seeds the pilot
        simulation of the attenuation measurement (unused with the
        analytic method).
        """
        ctx = self._metrics
        series = (
            trace.sizes if isinstance(trace, VideoTrace) else
            np.asarray(trace, dtype=float)
        )
        if series.ndim != 1 or series.size < 4 * self.max_lag:
            raise ValidationError(
                "trace must be one-dimensional with at least "
                f"{4 * self.max_lag} samples for a {self.max_lag}-lag fit"
            )

        # Marginal (eq. 7): empirical inversion or parametric fit.
        with ctx.time("model.fit_seconds", step="marginal"):
            if self.marginal_method == "gamma-pareto":
                self.marginal_ = fit_gamma_pareto(series)
            else:
                self.marginal_ = EmpiricalDistribution(
                    series,
                    bins=self.histogram_bins,
                    method=self.marginal_method,
                )
            self.transform_ = MarginalTransform(self.marginal_)

        # Step 1: Hurst parameter.
        with ctx.time("model.fit_seconds", step="hurst"):
            if self.hurst_override is None:
                self.variance_time_ = variance_time_estimate(series)
                self.rs_ = rs_estimate(series)
                self.hurst_ = 0.5 * (
                    self.variance_time_.hurst + self.rs_.hurst
                )
            else:
                self.variance_time_ = None
                self.rs_ = None
                self.hurst_ = float(self.hurst_override)
        if not 0.5 < self.hurst_ < 1.0:
            raise ValidationError(
                f"estimated Hurst parameter {self.hurst_:.3f} is outside "
                "(0.5, 1); the trace does not look long-range dependent"
            )
        ctx.set("model.hurst", float(self.hurst_))

        # Step 2: composite ACF fit with the tail exponent 2 - 2H.
        with ctx.time("model.fit_seconds", step="acf_fit"):
            self.empirical_acf_ = sample_acf(series, self.max_lag)
            self.acf_fit_ = fit_composite_acf(
                self.empirical_acf_,
                knee=self.knee,
                num_exponentials=self.num_exponentials,
                lrd_exponent=2.0 - 2.0 * self.hurst_,
                fit_nugget=self.fit_nugget,
            )

        # Step 3: attenuation of the transform.
        with ctx.time("model.fit_seconds", step="attenuation"):
            if self.attenuation_method == "analytic":
                self.attenuation_ = measure_attenuation_analytic(
                    self.transform_
                )
            else:
                pilot_corr = self.acf_fit_.model.with_continuity()
                hi = min(4 * int(self.acf_fit_.knee), self.max_lag)
                # The pilot simulation runs Davies-Harte; surface its
                # spectral-cache activity in the fit metrics.
                with spectral_cache_metrics(ctx, step="attenuation"):
                    self.attenuation_ = measure_attenuation_pilot(
                        pilot_corr,
                        self.transform_,
                        max_lag=self.max_lag,
                        lag_range=(int(self.acf_fit_.knee), hi),
                        random_state=random_state,
                    )
        ctx.set("model.attenuation", float(self.attenuation_))

        # Step 4: background correlation.
        with ctx.time("model.fit_seconds", step="background"):
            if self.background_method == "compensated":
                # The paper's eq. 14: divide the tail by a, re-solve the
                # head.
                self.background_ = self.acf_fit_.model.compensated(
                    self.attenuation_
                )
            else:
                # Hermite inversion: exact per-lag background ACF,
                # refitted with the composite structure so generation
                # stays valid.
                lags = np.arange(self.max_lag + 1, dtype=float)
                target = np.asarray(
                    self.acf_fit_.model(lags), dtype=float
                )
                target[0] = 1.0
                inverted = invert_transform_acf(target, self.transform_)
                refit = fit_composite_acf(
                    inverted,
                    knee=self.acf_fit_.knee,
                    num_exponentials=self.num_exponentials,
                    lrd_exponent=self.acf_fit_.model.lrd_exponent,
                    fit_nugget=self.fit_nugget,
                )
                self.background_ = refit.model.with_continuity()
        return self

    def _require_fitted(self) -> None:
        if self.background_ is None:
            raise NotFittedError(
                "UnifiedVBRModel must be fitted before this operation"
            )

    # ------------------------------------------------------------------
    # Fitted accessors
    # ------------------------------------------------------------------

    @property
    def metrics(self):
        """The model's :class:`~repro.observability.RunContext`.

        The shared null context when the model was built without
        ``metrics=``.
        """
        return self._metrics

    @property
    def background_correlation(self) -> CompositeCorrelation:
        """The compensated background correlation fed to the generator."""
        self._require_fitted()
        return self.background_

    @property
    def fitted_acf_model(self) -> CompositeCorrelation:
        """The composite model fitted to the empirical (foreground) ACF."""
        self._require_fitted()
        return self.acf_fit_.model

    @property
    def hurst(self) -> float:
        """The working Hurst estimate (Step 1)."""
        self._require_fitted()
        return float(self.hurst_)

    @property
    def attenuation(self) -> float:
        """The measured attenuation factor ``a`` (Step 3)."""
        self._require_fitted()
        return float(self.attenuation_)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def background_source(
        self, backend: BackendArg = "auto"
    ):
        """Resolve a :class:`~repro.processes.source.GaussianSource`.

        ``backend`` is a registry name (``"hosking"``,
        ``"davies_harte"``, ...), ``"auto"`` (Davies-Harte for the
        unconditional fixed-length paths generated here), or an
        already-built source instance.
        """
        self._require_fitted()
        return registry.resolve(
            backend, self.background_, metrics=self._metrics
        )

    def generate_background(
        self,
        n: int,
        *,
        size: Optional[int] = None,
        method: Optional[str] = None,
        backend: Optional[BackendArg] = None,
        chunk_frames: Optional[int] = None,
        processes: Optional[int] = None,
        stitch_window: Optional[int] = None,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Generate the background Gaussian process X (zero mean, unit var).

        ``backend`` selects a generation backend from
        :mod:`repro.processes.registry` (default ``"auto"``, which
        routes unconditional paths to the O(n log n) Davies-Harte
        generator).  ``method`` is the legacy spelling of the same
        choice (``"hosking"`` / ``"davies-harte"``) and is kept as an
        alias; passing both raises.

        ``chunk_frames`` routes generation through the scene-chunked
        pipeline of :mod:`repro.processes.chunked` (``processes`` chunk
        jobs in flight, ``stitch_window`` boundary-history frames for
        the bridge stitch), which requires the ``chunked`` backend
        capability and ``size=None``.  The default ``chunk_frames=None``
        keeps the single-pass path byte-identical to previous releases
        — chunking is part of the law, never an invisible default.
        """
        self._require_fitted()
        merged = merge_backend_args(method, backend)
        if chunk_frames is None:
            if processes is not None or stitch_window is not None:
                raise ValidationError(
                    "processes=/stitch_window= require chunk_frames="
                )
            source = self.background_source(merged)
            with spectral_cache_metrics(self._metrics):
                return source.sample(
                    n, size=size, random_state=random_state
                )
        if size is not None:
            raise ValidationError(
                "chunk_frames= generates one long path; size= is not "
                "supported (loop replications instead)"
            )
        source = registry.resolve(
            merged, self.background_, chunked=True, metrics=self._metrics
        )
        from ..processes.chunked import (
            DEFAULT_STITCH_WINDOW,
            ChunkedGenerator,
        )

        generator = ChunkedGenerator(
            source,
            chunk_frames=chunk_frames,
            stitch_window=(
                DEFAULT_STITCH_WINDOW
                if stitch_window is None
                else stitch_window
            ),
            processes=processes,
            metrics=self._metrics,
        )
        with spectral_cache_metrics(self._metrics):
            return generator.generate(n, random_state=random_state)

    def generate(
        self,
        n: int,
        *,
        size: Optional[int] = None,
        method: Optional[str] = None,
        backend: Optional[BackendArg] = None,
        chunk_frames: Optional[int] = None,
        processes: Optional[int] = None,
        stitch_window: Optional[int] = None,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Generate a synthetic foreground trace Y = h(X) (eq. 7)."""
        x = self.generate_background(
            n,
            size=size,
            method=method,
            backend=backend,
            chunk_frames=chunk_frames,
            processes=processes,
            stitch_window=stitch_window,
            random_state=random_state,
        )
        return np.asarray(self.transform_(x), dtype=float)

    def arrival_transform(self):
        """Unit-mean arrival transform for the queueing experiments.

        Returns a callable mapping background samples to arrivals with
        mean 1, so buffer sizes are the paper's *normalized* buffer
        sizes and the service rate for utilization ``rho`` is
        ``1 / rho``.
        """
        self._require_fitted()
        transform = self.transform_
        mean = self.marginal_.mean

        def arrivals(x: np.ndarray) -> np.ndarray:
            return np.asarray(transform(x), dtype=float) / mean

        return arrivals

    def __repr__(self) -> str:
        if self.background_ is None:
            return "UnifiedVBRModel(unfitted)"
        return (
            f"UnifiedVBRModel(hurst={self.hurst_:.3f}, "
            f"knee={self.acf_fit_.knee}, attenuation={self.attenuation_:.3f})"
        )
