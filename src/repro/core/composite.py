"""The composite MPEG (I/B/P) model of §3.3.

Interframe-coded MPEG video mixes three frame populations with very
different size distributions.  The paper's composite model keeps a
*single* stationary background process ``X`` (so all frames share one
dependence structure) and applies three different marginal transforms
``h_I, h_B, h_P`` according to the GOP pattern.  Its background
correlation comes from the I-frame subsequence:

1. isolate the I frames (one every ``K_I = 12`` frames) and fit the
   unified model to them (§3.2), giving a background correlation
   ``r_I`` at I-frame lag resolution;
2. stretch to frame resolution by ``r(k) = r_I(k / K_I)`` (eq. 15).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .._validation import check_positive_int
from ..exceptions import NotFittedError, ValidationError
from ..observability import ensure_context
from ..marginals.empirical import EmpiricalDistribution
from ..marginals.transform import MarginalTransform
from ..processes import registry
from ..processes.correlation import CorrelationModel, RescaledCorrelation
from ..processes.registry import BackendArg, merge_backend_args
from ..processes.spectral_cache import spectral_cache_metrics
from ..stats.random import RandomState
from ..video.gop import FrameType, GopStructure
from ..video.trace import VideoTrace
from .unified import UnifiedVBRModel

__all__ = ["CompositeMPEGModel", "GopPhaseArrivalTransform"]


class GopPhaseArrivalTransform:
    """Time-varying arrival transform for a fitted composite model.

    Maps background samples to unit-mean arrivals using the marginal
    transform of the frame type at the given slot's GOP position.  The
    normalising mean is the GOP-weighted mean frame size,
    ``sum_t count_t * mean_t / K_I``.
    """

    #: Simulators call ``transform(values, step)`` when this is True.
    time_varying = True

    def __init__(self, model: "CompositeMPEGModel") -> None:
        model._require_fitted()
        self._model = model
        gop = model.gop_
        counts = gop.type_counts()
        total = 0.0
        for frame_type, marginal in model.marginals_.items():
            from ..video.gop import FrameType as _FT

            total += counts[_FT(frame_type)] * marginal.mean
        self.mean_frame_size = total / gop.i_period
        # Per-GOP-position transform lookup.
        self._transforms = [
            model.transforms_[ft.value] for ft in gop.pattern
        ]

    def __call__(self, values, step: int):
        """Arrivals for slot ``step`` (0-based frame index)."""
        transform = self._transforms[step % len(self._transforms)]
        out = np.asarray(transform(values), dtype=float)
        return out / self.mean_frame_size


class CompositeMPEGModel:
    """Composite I/B/P VBR video model (one background, three transforms).

    Parameters
    ----------
    max_lag_i:
        ACF lags fitted on the I-frame subsequence (at I-frame
        resolution; ``max_lag_i = 41`` covers ~492 frame lags after
        rescaling by the paper's ``K_I = 12``).
    knee_i:
        Knee lag of the I-frame ACF fit (at I-frame resolution; the
        paper's frame-level knee of 60 corresponds to 5 here).  ``None``
        auto-detects.
    histogram_bins:
        Bins for each per-type histogram inversion.
    marginal_method:
        ``"histogram"`` or ``"exact"`` per-type marginal inversion (see
        :class:`~repro.core.unified.UnifiedVBRModel`).
    attenuation_method:
        Passed to the underlying unified model (``"pilot"`` or
        ``"analytic"``).
    hurst_override:
        Optional fixed Hurst parameter for the I-frame fit.
    metrics:
        Optional :class:`~repro.observability.RunContext`; per-step fit
        timers and fitted-parameter gauges are recorded under an
        ``model="composite-i"`` scope (the inner unified fit) plus
        ``model.fit_seconds`` steps of this model's own pipeline.
    """

    def __init__(
        self,
        *,
        max_lag_i: int = 41,
        knee_i: Optional[int] = None,
        histogram_bins: int = 200,
        marginal_method: str = "histogram",
        attenuation_method: str = "pilot",
        hurst_override: Optional[float] = None,
        metrics=None,
    ) -> None:
        self._metrics = ensure_context(metrics)
        self.max_lag_i = check_positive_int(max_lag_i, "max_lag_i")
        self.knee_i = knee_i
        self.histogram_bins = check_positive_int(
            histogram_bins, "histogram_bins"
        )
        if marginal_method not in ("histogram", "exact"):
            raise ValidationError(
                "marginal_method must be 'histogram' or 'exact', got "
                f"{marginal_method!r}"
            )
        self.marginal_method = marginal_method
        self.attenuation_method = attenuation_method
        self.hurst_override = hurst_override
        # Fitted state.
        self.gop_: Optional[GopStructure] = None
        self.i_model_: Optional[UnifiedVBRModel] = None
        self.transforms_: Dict[str, MarginalTransform] = {}
        self.marginals_: Dict[str, EmpiricalDistribution] = {}
        self.background_: Optional[CorrelationModel] = None
        self.frame_rate_: float = 30.0

    def fit(
        self,
        trace: VideoTrace,
        *,
        random_state: RandomState = None,
    ) -> "CompositeMPEGModel":
        """Fit the composite model to an interframe-coded trace."""
        if not isinstance(trace, VideoTrace):
            raise ValidationError(
                f"trace must be a VideoTrace, got {type(trace).__name__}"
            )
        if trace.gop is None:
            raise ValidationError(
                "trace has no GOP structure; use UnifiedVBRModel for "
                "intraframe-only traces"
            )
        self.gop_ = trace.gop
        self.frame_rate_ = trace.frame_rate

        ctx = self._metrics

        # Per-type marginals and transforms.
        with ctx.time("model.fit_seconds", step="marginals"):
            self.marginals_ = {}
            self.transforms_ = {}
            for frame_type in FrameType:
                sizes = trace.sizes_of(frame_type)
                if sizes.size == 0:
                    continue
                marginal = EmpiricalDistribution(
                    sizes, bins=self.histogram_bins,
                    method=self.marginal_method,
                )
                self.marginals_[frame_type.value] = marginal
                self.transforms_[frame_type.value] = MarginalTransform(
                    marginal
                )

        # Step 1 (§3.3): unified fit on the I-frame subsequence.  The
        # inner model records its own per-step timers under a
        # model="composite-i" scope of the same registry.
        i_sizes = trace.sizes_of(FrameType.I)
        self.i_model_ = UnifiedVBRModel(
            max_lag=self.max_lag_i,
            knee=self.knee_i,
            histogram_bins=self.histogram_bins,
            marginal_method=self.marginal_method,
            attenuation_method=self.attenuation_method,
            hurst_override=self.hurst_override,
            metrics=ctx.scoped(model="composite-i"),
        ).fit(i_sizes, random_state=random_state)

        # Step 2 (§3.3): stretch the I-frame background correlation to
        # frame resolution, r(k) = r_I(k / K_I).
        with ctx.time("model.fit_seconds", step="rescale"):
            self.background_ = RescaledCorrelation(
                self.i_model_.background_correlation, self.gop_.i_period
            )
        return self

    def _require_fitted(self) -> None:
        if self.background_ is None:
            raise NotFittedError(
                "CompositeMPEGModel must be fitted before this operation"
            )

    @property
    def metrics(self):
        """The model's :class:`~repro.observability.RunContext`.

        The shared null context when the model was built without
        ``metrics=``.
        """
        return self._metrics

    @property
    def background_correlation(self) -> CorrelationModel:
        """The rescaled background correlation (eq. 15)."""
        self._require_fitted()
        return self.background_

    @property
    def i_model(self) -> UnifiedVBRModel:
        """The unified model fitted to the I-frame subsequence."""
        self._require_fitted()
        return self.i_model_

    def background_source(self, backend: BackendArg = "auto"):
        """Resolve a :class:`~repro.processes.source.GaussianSource`
        over the rescaled background correlation (eq. 15)."""
        self._require_fitted()
        return registry.resolve(
            backend, self.background_, metrics=self._metrics
        )

    def generate_background(
        self,
        n: int,
        *,
        method: Optional[str] = None,
        backend: Optional[BackendArg] = None,
        chunk_frames: Optional[int] = None,
        processes: Optional[int] = None,
        stitch_window: Optional[int] = None,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Generate the shared background Gaussian process of length n.

        ``backend`` selects a registry backend (default ``"auto"`` =
        Davies-Harte for these unconditional fixed-length paths);
        ``method`` is the legacy alias.

        ``chunk_frames`` routes through the scene-chunked pipeline of
        :mod:`repro.processes.chunked` with chunk edges aligned to the
        fitted GOP period ``K_I``, so every chunk starts on an I frame;
        ``processes`` bounds concurrent chunk jobs and
        ``stitch_window`` sizes the bridge stitch's boundary history.
        ``chunk_frames=None`` (the default) keeps the single-pass path
        byte-identical to previous releases.
        """
        self._require_fitted()
        n = check_positive_int(n, "n")
        merged = merge_backend_args(method, backend)
        if chunk_frames is None:
            if processes is not None or stitch_window is not None:
                raise ValidationError(
                    "processes=/stitch_window= require chunk_frames="
                )
            source = self.background_source(merged)
            with spectral_cache_metrics(self._metrics):
                return source.sample(n, random_state=random_state)
        source = registry.resolve(
            merged, self.background_, chunked=True, metrics=self._metrics
        )
        from ..processes.chunked import (
            DEFAULT_STITCH_WINDOW,
            ChunkedGenerator,
        )

        generator = ChunkedGenerator(
            source,
            chunk_frames=chunk_frames,
            alignment=self.gop_.i_period,
            stitch_window=(
                DEFAULT_STITCH_WINDOW
                if stitch_window is None
                else stitch_window
            ),
            processes=processes,
            metrics=self._metrics,
        )
        with spectral_cache_metrics(self._metrics):
            return generator.generate(n, random_state=random_state)

    def generate(
        self,
        n: int,
        *,
        method: Optional[str] = None,
        backend: Optional[BackendArg] = None,
        chunk_frames: Optional[int] = None,
        processes: Optional[int] = None,
        stitch_window: Optional[int] = None,
        random_state: RandomState = None,
    ) -> VideoTrace:
        """Generate a synthetic interframe trace of ``n`` frames.

        The background process is shared; each frame maps through the
        transform of its GOP position's frame type.
        """
        self._require_fitted()
        x = self.generate_background(
            n,
            method=method,
            backend=backend,
            chunk_frames=chunk_frames,
            processes=processes,
            stitch_window=stitch_window,
            random_state=random_state,
        )
        sizes = np.empty(n, dtype=float)
        for frame_type in FrameType:
            key = frame_type.value
            if key not in self.transforms_:
                continue
            mask = self.gop_.mask(frame_type, n)
            if not mask.any():
                continue
            sizes[mask] = np.asarray(
                self.transforms_[key](x[mask]), dtype=float
            )
        return VideoTrace(
            sizes=sizes,
            frame_rate=self.frame_rate_,
            gop=self.gop_,
            name="composite-mpeg-model",
        )

    def arrival_transform(self) -> "GopPhaseArrivalTransform":
        """Unit-mean, GOP-phase-aware arrivals for queueing experiments.

        Each slot maps the background sample through the transform of
        its GOP position's frame type and divides by the aggregate mean
        frame size, so buffer sizes are normalized buffer sizes just
        like in the intraframe experiments.  The returned object is a
        *time-varying* transform (``time_varying = True``); the
        importance-sampling simulators dispatch on that flag.
        """
        self._require_fitted()
        return GopPhaseArrivalTransform(self)

    def __repr__(self) -> str:
        if self.background_ is None:
            return "CompositeMPEGModel(unfitted)"
        return (
            f"CompositeMPEGModel(gop={self.gop_.pattern_string!r}, "
            f"i_model={self.i_model_!r})"
        )
