"""Attenuation measurement and background-ACF calibration.

Step 3 of the paper's pipeline measures how much the marginal transform
``h`` attenuates the autocorrelation, and Step 4 divides the target ACF
by that factor before generating the background process.  Three levels
of machinery are provided, from the paper's original procedure to a
strictly stronger analytic method:

1. :func:`measure_attenuation_pilot` — the paper's Step 3: generate a
   pilot background/foreground pair and measure the ACF ratio at large
   lags (the paper measured ``a = 0.94``).
2. :func:`measure_attenuation_analytic` — Appendix A's eq. 30 evaluated
   by Gauss-Hermite quadrature; no simulation, no sampling noise.
3. :func:`invert_transform_acf` — exact per-lag inversion of the
   Hermite-expansion map ``r -> r_h`` so the background ACF reproduces
   the target foreground ACF at *every* lag, not just asymptotically.
   This implements the "automatic search for the best background
   autocorrelation structure" the paper lists as under investigation.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from .._validation import check_1d_array, check_positive_int
from ..exceptions import EstimationError
from ..estimators.acf import sample_acf
from ..marginals.attenuation import (
    analytic_attenuation,
    hermite_coefficients,
    measured_attenuation,
)
from ..processes.correlation import CorrelationModel
from ..processes.davies_harte import davies_harte_generate
from ..stats.random import RandomState

__all__ = [
    "measure_attenuation_pilot",
    "measure_attenuation_analytic",
    "invert_transform_acf",
]

TransformLike = Callable[[np.ndarray], np.ndarray]


def measure_attenuation_pilot(
    background: Union[CorrelationModel, Sequence[float]],
    transform: TransformLike,
    *,
    pilot_length: int = 1 << 16,
    max_lag: int = 400,
    lag_range: tuple = (100, 400),
    random_state: RandomState = None,
) -> float:
    """Measure the attenuation factor from a pilot simulation (Step 3).

    Generates a pilot background path with the given correlation,
    applies the transform, and returns the mean foreground/background
    ACF ratio over ``lag_range``.  This is exactly the paper's
    procedure and inherits its realization noise; prefer
    :func:`measure_attenuation_analytic` when determinism matters.
    """
    pilot_length = check_positive_int(pilot_length, "pilot_length")
    max_lag = min(max_lag, pilot_length // 4)
    x = davies_harte_generate(
        background, pilot_length, random_state=random_state
    )
    y = np.asarray(transform(x), dtype=float)
    # Both ACFs use sample-mean centering: for strongly LRD paths the
    # sample ACF is biased downward by the sample-mean variance, and
    # centering both series the same way makes the bias cancel in the
    # ratio (an identity transform then measures exactly a = 1).
    background_acf = sample_acf(x, max_lag)
    foreground_acf = sample_acf(y, max_lag)
    hi = min(lag_range[1], max_lag)
    return measured_attenuation(
        background_acf, foreground_acf, lag_range=(lag_range[0], hi)
    )


def measure_attenuation_analytic(
    transform: TransformLike, *, quad_order: int = 200
) -> float:
    """Attenuation factor via Appendix A eq. 30 (no simulation)."""
    return analytic_attenuation(transform, quad_order=quad_order)


def invert_transform_acf(
    target_acf: Sequence[float],
    transform: TransformLike,
    *,
    max_order: int = 30,
    quad_order: int = 200,
    grid_points: int = 2001,
) -> np.ndarray:
    """Invert the Hermite map so ``transformed_acf(result) = target_acf``.

    The foreground ACF is a fixed, strictly increasing function of the
    background ACF at each lag:

    .. math:: r_h = g(r) = \\frac{\\sum_m (c_m^2/m!) r^m}{\\sum_m c_m^2/m!}

    This routine tabulates ``g`` on a dense grid of ``r`` in [-1, 1]
    and inverts it by monotone interpolation, lag by lag.  Target
    values above ``g(1) = 1`` or below ``g(-1)`` are clamped, and the
    resulting sequence has ``result[0] = 1``.

    Notes
    -----
    The inverted sequence is an exact pointwise solution but is not
    guaranteed positive definite; callers should either fit a smooth
    :class:`~repro.processes.correlation.CompositeCorrelation` through
    it or validate it with the Durbin-Levinson recursion before
    generation.
    """
    target = check_1d_array(target_acf, "target_acf")
    check_positive_int(grid_points, "grid_points")
    coeffs = hermite_coefficients(
        transform, max_order, quad_order=quad_order
    )
    orders = np.arange(1, coeffs.size)
    factorials = np.cumprod(np.concatenate([[1.0], orders.astype(float)]))
    weights = coeffs[1:] ** 2 / factorials[1:]
    total = weights.sum()
    if total <= 0:
        raise EstimationError(
            "transform has no non-constant Hermite mass; cannot invert"
        )
    grid = np.linspace(-1.0, 1.0, grid_points)
    g_values = (grid[:, None] ** orders[None, :]) @ weights / total
    # g is strictly increasing on [-1, 1] for transforms with c_1 != 0;
    # enforce monotonicity against rounding before interpolating.
    g_values = np.maximum.accumulate(g_values)
    clipped = np.clip(target, g_values[0], g_values[-1])
    inverted = np.interp(clipped, g_values, grid)
    inverted[0] = 1.0
    return inverted
