"""The paper's primary contribution: the unified VBR video model.

- :class:`~repro.core.unified.UnifiedVBRModel` — the four-step pipeline
  of §3.2: Hurst estimation, composite SRD+LRD autocorrelation fitting,
  attenuation measurement, and compensated background generation with
  histogram-inversion marginals.
- :class:`~repro.core.composite.CompositeMPEGModel` — the §3.3
  extension to interframe (I/B/P) video: one background process, three
  per-type transforms, I-frame correlation rescaled by the GOP period.
- :mod:`repro.core.calibration` — attenuation measurement (pilot
  simulation and analytic) and exact per-lag Hermite inversion of the
  transform's effect on the ACF.
"""

from .aggregate import (
    AggregateFeed,
    ShardedAggregateModel,
    SourceClass,
    SourcePopulation,
    as_population,
)
from .calibration import (
    invert_transform_acf,
    measure_attenuation_analytic,
    measure_attenuation_pilot,
)
from .composite import CompositeMPEGModel
from .multiplex import AggregateVBRModel, aggregate_marginal
from .pipeline import ModelFitReport, fit_report
from .unified import UnifiedVBRModel

__all__ = [
    "UnifiedVBRModel",
    "CompositeMPEGModel",
    "AggregateVBRModel",
    "aggregate_marginal",
    "SourceClass",
    "SourcePopulation",
    "ShardedAggregateModel",
    "AggregateFeed",
    "as_population",
    "ModelFitReport",
    "fit_report",
    "measure_attenuation_pilot",
    "measure_attenuation_analytic",
    "invert_transform_acf",
]
