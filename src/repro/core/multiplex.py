"""Statistical multiplexing of homogeneous VBR video sources.

The paper's opening motivation is that packet networks "support
variable bit rate connections, thus allowing efficient statistical
multiplexing of bursty traffic".  This module models the *aggregate*
of ``n`` independent, statistically identical video sources within the
same unified framework:

- the aggregate's **autocorrelation** equals the per-source
  autocorrelation (covariances of iid sums scale by ``n`` in numerator
  and denominator alike), so the fitted foreground ACF carries over;
- the aggregate's **marginal** is the n-fold convolution of the
  per-source marginal, estimated here by Monte Carlo convolution and
  inverted with the same histogram technique (eq. 7);
- the aggregate transform is *less* nonlinear (CLT), so its
  attenuation factor rises toward 1 and the compensated background
  needs less correction — the model becomes easier, not harder, as
  sources are added.

The multiplexing-gain bench feeds aggregates of growing size into the
importance-sampling machinery and shows the overflow probability at a
fixed utilization and per-source-normalized buffer dropping as sources
are added.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .._validation import check_positive_int
from ..exceptions import NotFittedError, ValidationError
from ..marginals.empirical import EmpiricalDistribution
from ..marginals.transform import MarginalTransform
from ..processes import registry
from ..processes.correlation import CompositeCorrelation
from ..processes.registry import BackendArg, merge_backend_args
from ..stats.random import RandomState, make_rng
from .calibration import measure_attenuation_analytic
from .unified import UnifiedVBRModel

__all__ = ["AggregateVBRModel", "aggregate_marginal"]


def aggregate_marginal(
    marginal: EmpiricalDistribution,
    num_sources: int,
    *,
    samples: int = 1 << 17,
    bins: int = 300,
    random_state: RandomState = None,
    chunk_draws: Optional[int] = None,
) -> EmpiricalDistribution:
    """Empirical marginal of the sum of ``num_sources`` iid draws.

    Monte Carlo convolution: draws ``samples`` sums of ``num_sources``
    independent per-source values and re-inverts the histogram.  Exact
    enough for the transform, and trivially correct for any marginal
    shape (FFT convolution of histograms accumulates binning error for
    large ``n``).

    The ``samples x num_sources`` draw matrix is never materialized:
    sums are accumulated over row chunks of at most ``chunk_draws``
    draws (default: ``samples``), so peak memory is O(samples)
    regardless of ``num_sources`` — at ``num_sources = 10**4`` the
    historical full-matrix path needed ~10 GB; the chunked path needs
    ~1 MB.  Chunks consume the random stream in the same contiguous
    row-major order as the full matrix did, so results are
    bit-identical to the historical path for a fixed seed.
    """
    num_sources = check_positive_int(num_sources, "num_sources")
    samples = check_positive_int(samples, "samples")
    if chunk_draws is None:
        chunk_draws = samples
    else:
        chunk_draws = check_positive_int(chunk_draws, "chunk_draws")
    rng = make_rng(random_state)
    rows_per_chunk = max(1, chunk_draws // num_sources)
    sums = np.empty(samples, dtype=float)
    for start in range(0, samples, rows_per_chunk):
        rows = min(rows_per_chunk, samples - start)
        draws = marginal.sample(rows * num_sources, rng)
        sums[start:start + rows] = (
            draws.reshape(rows, num_sources).sum(axis=1)
        )
    return EmpiricalDistribution(sums, bins=bins)


class AggregateVBRModel:
    """Aggregate of ``num_sources`` homogeneous unified video sources.

    Parameters
    ----------
    base_model:
        A fitted :class:`~repro.core.unified.UnifiedVBRModel` for one
        source.
    num_sources:
        Number of multiplexed sources.
    convolution_samples:
        Monte Carlo sample count for the aggregate marginal.
    random_state:
        Seed for the marginal convolution (deterministic aggregate
        model for a fixed seed).
    """

    def __init__(
        self,
        base_model: UnifiedVBRModel,
        num_sources: int,
        *,
        convolution_samples: int = 1 << 17,
        random_state: RandomState = None,
    ) -> None:
        if not isinstance(base_model, UnifiedVBRModel):
            raise ValidationError(
                "base_model must be a UnifiedVBRModel, got "
                f"{type(base_model).__name__}"
            )
        if base_model.background_ is None:
            raise NotFittedError(
                "base_model must be fitted before aggregation"
            )
        self.base_model = base_model
        self.num_sources = check_positive_int(num_sources, "num_sources")

        self.marginal_ = aggregate_marginal(
            base_model.marginal_,
            self.num_sources,
            samples=convolution_samples,
            random_state=random_state,
        )
        self.transform_ = MarginalTransform(self.marginal_)
        # The foreground target ACF is the per-source fitted model; the
        # aggregate transform attenuates less (CLT), so recompute the
        # compensation for the new transform.
        self.attenuation_ = measure_attenuation_analytic(self.transform_)
        self.background_ = base_model.fitted_acf_model.compensated(
            min(self.attenuation_, 1.0)
        )

    @property
    def attenuation(self) -> float:
        """Analytic attenuation factor of the aggregate transform."""
        return float(self.attenuation_)

    @property
    def background_correlation(self) -> CompositeCorrelation:
        """Background correlation driving the aggregate generator."""
        return self.background_

    def generate(
        self,
        n: int,
        *,
        size: Optional[int] = None,
        method: Optional[str] = None,
        backend: Optional[BackendArg] = None,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Generate aggregate byte-per-slot sample paths.

        ``backend`` selects a registry backend (default ``"auto"``);
        ``method`` is the legacy alias.
        """
        source = registry.resolve(
            merge_backend_args(method, backend), self.background_
        )
        x = source.sample(n, size=size, random_state=random_state)
        return np.asarray(self.transform_(x), dtype=float)

    def arrival_transform(self) -> Callable[[np.ndarray], np.ndarray]:
        """Unit-mean aggregate arrivals for the queueing experiments.

        Buffer sizes are then normalized by the *aggregate* mean rate;
        to compare against a single source at the same utilization,
        also normalize the single source by its own mean (both then
        see service ``1 / utilization``).
        """
        transform = self.transform_
        mean = self.marginal_.mean

        def arrivals(x: np.ndarray) -> np.ndarray:
            return np.asarray(transform(x), dtype=float) / mean

        return arrivals

    def __repr__(self) -> str:
        return (
            f"AggregateVBRModel(num_sources={self.num_sources}, "
            f"attenuation={self.attenuation_:.3f})"
        )
