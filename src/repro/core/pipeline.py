"""Fit reporting and end-to-end convenience helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..exceptions import NotFittedError
from .unified import UnifiedVBRModel

__all__ = ["ModelFitReport", "fit_report"]


@dataclass(frozen=True)
class ModelFitReport:
    """A printable summary of a fitted unified model.

    Attributes mirror the quantities the paper reports in §3.2:
    the two Hurst estimates, the adopted value, the composite ACF fit
    parameters (eq. 13), and the attenuation factor (Step 3).
    """

    hurst_variance_time: Optional[float]
    hurst_rs: Optional[float]
    hurst: float
    knee: int
    srd_rates: tuple
    srd_weights: tuple
    lrd_amplitude: float
    lrd_exponent: float
    nugget: float
    acf_rmse: float
    attenuation: float
    background_srd_rate: float
    background_lrd_amplitude: float
    marginal_mean: float
    marginal_std: float

    def rows(self) -> Dict[str, str]:
        """Rows for tabular printing."""
        fmt = lambda v: "n/a" if v is None else f"{v:.4f}"  # noqa: E731
        return {
            "Hurst (variance-time)": fmt(self.hurst_variance_time),
            "Hurst (R/S)": fmt(self.hurst_rs),
            "Hurst (adopted)": f"{self.hurst:.4f}",
            "Knee lag Kt": str(self.knee),
            "SRD rates": ", ".join(f"{r:.5f}" for r in self.srd_rates),
            "SRD weights": ", ".join(f"{w:.3f}" for w in self.srd_weights),
            "LRD amplitude L": f"{self.lrd_amplitude:.4f}",
            "LRD exponent gamma": f"{self.lrd_exponent:.4f}",
            "Nugget (lag-0 noise mass)": f"{self.nugget:.4f}",
            "ACF fit RMSE": f"{self.acf_rmse:.4f}",
            "Attenuation a": f"{self.attenuation:.4f}",
            "Background SRD rate": f"{self.background_srd_rate:.5f}",
            "Background LRD amplitude": f"{self.background_lrd_amplitude:.4f}",
            "Marginal mean (bytes/frame)": f"{self.marginal_mean:.1f}",
            "Marginal std (bytes/frame)": f"{self.marginal_std:.1f}",
        }

    def __str__(self) -> str:
        width = max(len(k) for k in self.rows())
        return "\n".join(
            f"{key.ljust(width)}  {value}"
            for key, value in self.rows().items()
        )


def fit_report(model: UnifiedVBRModel) -> ModelFitReport:
    """Build a :class:`ModelFitReport` from a fitted unified model."""
    if model.background_ is None:
        raise NotFittedError("fit the model before requesting a report")
    fitted = model.acf_fit_.model
    background = model.background_
    return ModelFitReport(
        hurst_variance_time=(
            model.variance_time_.hurst if model.variance_time_ else None
        ),
        hurst_rs=model.rs_.hurst if model.rs_ else None,
        hurst=model.hurst,
        knee=model.acf_fit_.knee,
        srd_rates=tuple(float(r) for r in fitted.srd.rates),
        srd_weights=tuple(float(w) for w in fitted.srd.weights),
        lrd_amplitude=fitted.lrd_amplitude,
        lrd_exponent=fitted.lrd_exponent,
        nugget=fitted.nugget,
        acf_rmse=model.acf_fit_.rmse,
        attenuation=model.attenuation,
        background_srd_rate=float(background.srd.rates[0]),
        background_lrd_amplitude=background.lrd_amplitude,
        marginal_mean=model.marginal_.mean,
        marginal_std=float(model.marginal_.variance**0.5),
    )
