"""The marginal inversion transform ``Y = h(X)`` (paper eq. 7).

Given a zero-mean unit-variance Gaussian background process ``X`` and a
target marginal ``F_Y``, the foreground process is

.. math:: Y_k = h(X_k) = F_Y^{-1}(\\Phi(X_k))

where ``Phi`` is the standard normal CDF.  The transform is monotone
non-decreasing, so by the paper's Appendix A theorem the foreground
keeps the background's Hurst parameter, with the ACF attenuated by the
factor computed in :mod:`repro.marginals.attenuation`.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import special, stats

from ..exceptions import ValidationError
from .parametric import (
    GammaDistribution,
    MarginalDistribution,
    NormalDistribution,
)

__all__ = ["MarginalTransform"]

ArrayLike = Union[float, np.ndarray]

# Copula uniforms are kept strictly inside (0, 1) so targets with
# unbounded support never evaluate ppf at exactly 0 or 1 (which would
# produce infinities at extreme background values, e.g. Gauss-Hermite
# quadrature nodes beyond |x| ~ 8 where Phi(x) rounds to 1.0).
_U_FLOOR = 1e-300
_U_CEIL = float(np.nextafter(1.0, 0.0))


class MarginalTransform:
    """Gaussian-copula marginal transform ``h(x) = F_Y^{-1}(Phi(x))``.

    Parameters
    ----------
    target:
        The target marginal distribution ``F_Y`` (empirical or
        parametric).

    Notes
    -----
    ``h`` is monotone non-decreasing because both ``Phi`` and
    ``F_Y^{-1}`` are.  The inverse mapping
    ``h^{-1}(y) = Phi^{-1}(F_Y(y))`` recovers background values from
    foreground ones and is used in tests of the Appendix A theorem.
    """

    def __init__(self, target: MarginalDistribution) -> None:
        if not isinstance(target, MarginalDistribution):
            raise ValidationError(
                "target must be a MarginalDistribution, got "
                f"{type(target).__name__}"
            )
        self.target = target
        # Closed-form fast paths for the two marginals the aggregate
        # engine hammers (one transform pass per generation block).
        # Normal: h(x) = mu + sigma x exactly — Phi then Phi^{-1}
        # cancel, so the affine form is the *more* accurate one (and
        # skips the copula clip, which only exists to keep unbounded
        # ppf's finite at |x| beyond ~8).  Gamma: the frozen scipy
        # machinery reduces to gammaincinv(shape, ndtr(x)) * scale —
        # calling the ufuncs directly is bitwise identical and skips
        # the per-call argument-validation dispatch.
        self._fast: str = "generic"
        if isinstance(target, NormalDistribution):
            self._fast = "normal"
        elif isinstance(target, GammaDistribution):
            self._fast = "gamma"

    def _apply(self, x_arr: np.ndarray) -> np.ndarray:
        """The array core of ``h`` (fast paths + generic fallback)."""
        if self._fast == "normal":
            return self.target.mu + self.target.sigma * x_arr
        if self._fast == "gamma":
            u = np.clip(special.ndtr(x_arr), _U_FLOOR, _U_CEIL)
            out = special.gammaincinv(self.target.shape, u)
            out *= self.target.scale
            return out
        u = np.clip(stats.norm.cdf(x_arr), _U_FLOOR, _U_CEIL)
        return self.target.ppf(u)

    def __call__(self, x: ArrayLike) -> ArrayLike:
        """Apply ``h`` to background samples (any shape)."""
        x_arr = np.asarray(x, dtype=float)
        out = self._apply(x_arr)
        if np.isscalar(x):
            return float(out)
        return np.asarray(out, dtype=float).reshape(x_arr.shape)

    def inverse(self, y: ArrayLike) -> ArrayLike:
        """Apply ``h^{-1}(y) = Phi^{-1}(F_Y(y))``.

        Values outside the target's support map to ``±inf``, matching
        the convention of :func:`scipy.stats.norm.ppf`.
        """
        y_arr = np.asarray(y, dtype=float)
        u = np.asarray(self.target.cdf(y_arr), dtype=float)
        out = stats.norm.ppf(u)
        if np.isscalar(y):
            return float(out)
        return np.asarray(out, dtype=float).reshape(y_arr.shape)

    def table(self, x_grid: ArrayLike) -> np.ndarray:
        """Evaluate ``h`` on a grid (used to draw the paper's Fig. 2)."""
        return np.asarray(self(np.asarray(x_grid, dtype=float)))

    def __repr__(self) -> str:
        return f"MarginalTransform(target={self.target!r})"
