"""Parametric marginal fitting.

Garrett & Willinger (the paper's reference [7]) model the frame-size
marginal with a Gamma body and a Pareto tail; the paper instead
inverts the histogram directly but keeps the parametric route as a
stated alternative ("F_Y(y) can be obtained either by modeling an
empirical distribution using parametric mathematical functions or, as
we do in our approach, by inverting the empirical distribution
directly").  This module provides that alternative:

- :func:`fit_gamma` — moment-matched Gamma body;
- :func:`fit_pareto_tail` — Hill-style tail-index estimate over the
  upper order statistics;
- :func:`fit_gamma_pareto` — the combined body/tail model with the
  splice point chosen by tail-fraction.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import check_in_range, check_min_length
from ..exceptions import EstimationError
from .parametric import (
    GammaDistribution,
    GammaParetoDistribution,
)

__all__ = ["fit_gamma", "fit_pareto_tail", "fit_gamma_pareto"]


def fit_gamma(samples: Sequence[float]) -> GammaDistribution:
    """Moment-matched Gamma fit: ``shape = m^2/v``, ``scale = v/m``."""
    arr = check_min_length(samples, "samples", 8)
    if np.any(arr <= 0):
        raise EstimationError(
            "Gamma fitting requires strictly positive samples"
        )
    mean = float(arr.mean())
    variance = float(arr.var(ddof=1))
    if variance <= 0:
        raise EstimationError("samples have zero variance")
    return GammaDistribution(
        shape=mean * mean / variance, scale=variance / mean
    )


def fit_pareto_tail(
    samples: Sequence[float],
    *,
    tail_fraction: float = 0.03,
) -> float:
    """Hill estimator of the Pareto tail index over the upper tail.

    Uses the largest ``tail_fraction`` of the samples:

    .. math::

        \\hat\\alpha^{-1} = \\frac{1}{k} \\sum_{i=1}^{k}
            \\log \\frac{X_{(n-i+1)}}{X_{(n-k)}}
    """
    arr = np.sort(check_min_length(samples, "samples", 64))
    fraction = check_in_range(
        tail_fraction, "tail_fraction", 0.0, 0.5, inclusive_low=False
    )
    k = max(8, int(arr.size * fraction))
    threshold = arr[-k - 1]
    if threshold <= 0:
        raise EstimationError(
            "tail threshold non-positive; cannot fit a Pareto tail"
        )
    tail = arr[-k:]
    inverse_alpha = float(np.mean(np.log(tail / threshold)))
    if inverse_alpha <= 0:
        raise EstimationError("degenerate upper tail (all values equal)")
    return 1.0 / inverse_alpha


def fit_gamma_pareto(
    samples: Sequence[float],
    *,
    splice_quantile: float = 0.97,
    tail_alpha: Optional[float] = None,
) -> GammaParetoDistribution:
    """Fit the Garrett-Willinger Gamma-body / Pareto-tail marginal.

    The Gamma body is moment-matched on the samples *below* the splice
    quantile (so the heavy tail does not corrupt the body moments); the
    tail index defaults to the Hill estimate over the upper tail.
    """
    arr = check_min_length(samples, "samples", 64)
    quantile = check_in_range(
        splice_quantile, "splice_quantile", 0.5, 1.0,
        inclusive_high=False,
    )
    cut = float(np.quantile(arr, quantile))
    body = arr[arr <= cut]
    gamma = fit_gamma(body)
    if tail_alpha is None:
        tail_alpha = fit_pareto_tail(
            arr, tail_fraction=1.0 - quantile
        )
    return GammaParetoDistribution(
        shape=gamma.shape,
        scale=gamma.scale,
        tail_alpha=float(tail_alpha),
        splice_quantile=quantile,
    )
