"""Parametric marginal distributions.

All distributions implement the small :class:`MarginalDistribution`
interface consumed by :class:`~repro.marginals.transform.MarginalTransform`:
a CDF, an inverse CDF (``ppf``), and first moments.  Included are the
distributions the VBR video literature actually uses:

- Gamma — body of the frame-size distribution (Garrett & Willinger '94),
- Pareto — the heavy tail responsible for the "long tail ... far from
  Gaussian" the paper observes (§3),
- GammaPareto — the combined Gamma body / Pareto tail model of
  Garrett & Willinger, the paper's reference [7],
- Lognormal and Normal — common baselines.
"""

from __future__ import annotations

import abc
from typing import Union

import numpy as np
from scipy import stats

from .._validation import check_in_range, check_positive_float
from ..exceptions import ValidationError

__all__ = [
    "MarginalDistribution",
    "GammaDistribution",
    "ParetoDistribution",
    "GammaParetoDistribution",
    "LognormalDistribution",
    "NormalDistribution",
]

ArrayLike = Union[float, np.ndarray]


class MarginalDistribution(abc.ABC):
    """Minimal distribution interface for marginal modeling."""

    @abc.abstractmethod
    def cdf(self, x: ArrayLike) -> ArrayLike:
        """Cumulative distribution function."""

    @abc.abstractmethod
    def ppf(self, q: ArrayLike) -> ArrayLike:
        """Inverse CDF (quantile function) for ``q`` in [0, 1]."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Distribution mean."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Distribution variance."""

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` samples by inverse-CDF sampling."""
        return np.asarray(self.ppf(rng.uniform(size=n)), dtype=float)


class _ScipyBacked(MarginalDistribution):
    """Adapter for frozen scipy.stats distributions."""

    def __init__(self, frozen) -> None:
        self._dist = frozen

    def cdf(self, x: ArrayLike) -> ArrayLike:
        return self._dist.cdf(x)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        return self._dist.ppf(q)

    @property
    def mean(self) -> float:
        return float(self._dist.mean())

    @property
    def variance(self) -> float:
        return float(self._dist.var())


class GammaDistribution(_ScipyBacked):
    """Gamma distribution with shape ``k`` and scale ``theta``."""

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = check_positive_float(shape, "shape")
        self.scale = check_positive_float(scale, "scale")
        super().__init__(stats.gamma(self.shape, scale=self.scale))

    def __repr__(self) -> str:
        return f"GammaDistribution(shape={self.shape}, scale={self.scale})"


class ParetoDistribution(_ScipyBacked):
    """Pareto distribution: ``P(X > x) = (xm / x)^alpha`` for ``x >= xm``."""

    def __init__(self, alpha: float, xm: float) -> None:
        self.alpha = check_positive_float(alpha, "alpha")
        self.xm = check_positive_float(xm, "xm")
        super().__init__(stats.pareto(self.alpha, scale=self.xm))

    def __repr__(self) -> str:
        return f"ParetoDistribution(alpha={self.alpha}, xm={self.xm})"


class LognormalDistribution(_ScipyBacked):
    """Lognormal distribution of ``exp(N(mu, sigma^2))``."""

    def __init__(self, mu: float, sigma: float) -> None:
        self.mu = float(mu)
        self.sigma = check_positive_float(sigma, "sigma")
        super().__init__(stats.lognorm(self.sigma, scale=np.exp(self.mu)))

    def __repr__(self) -> str:
        return f"LognormalDistribution(mu={self.mu}, sigma={self.sigma})"


class NormalDistribution(_ScipyBacked):
    """Normal distribution N(mu, sigma^2)."""

    def __init__(self, mu: float = 0.0, sigma: float = 1.0) -> None:
        self.mu = float(mu)
        self.sigma = check_positive_float(sigma, "sigma")
        super().__init__(stats.norm(self.mu, self.sigma))

    def __repr__(self) -> str:
        return f"NormalDistribution(mu={self.mu}, sigma={self.sigma})"


class GammaParetoDistribution(MarginalDistribution):
    """Gamma body with a Pareto tail (Garrett & Willinger 1994).

    The distribution follows a Gamma law up to the splice point and a
    Pareto law beyond it:

    .. math::

        F(x) = \\begin{cases}
            F_\\Gamma(x) & x \\le x_c \\\\
            F_\\Gamma(x_c) + (1 - F_\\Gamma(x_c))
                \\big(1 - (x_c / x)^{\\alpha}\\big) & x > x_c
        \\end{cases}

    so the tail mass ``1 - F_Gamma(x_c)`` is redistributed as a Pareto
    with scale ``x_c``.  The CDF is continuous and strictly increasing,
    making the inverse well defined piecewise.

    Parameters
    ----------
    shape, scale:
        Gamma body parameters.
    tail_alpha:
        Pareto tail index (smaller = heavier tail; < 2 gives infinite
        variance, matching measured MPEG frame-size tails).
    splice_quantile:
        Quantile of the Gamma body where the tail takes over
        (default 0.97, in the range Garrett & Willinger report).
    """

    def __init__(
        self,
        shape: float,
        scale: float,
        tail_alpha: float,
        *,
        splice_quantile: float = 0.97,
    ) -> None:
        self.gamma = GammaDistribution(shape, scale)
        self.tail_alpha = check_positive_float(tail_alpha, "tail_alpha")
        self.splice_quantile = check_in_range(
            splice_quantile,
            "splice_quantile",
            0.0,
            1.0,
            inclusive_low=False,
            inclusive_high=False,
        )
        self.splice_point = float(self.gamma.ppf(self.splice_quantile))
        if self.splice_point <= 0:
            raise ValidationError(
                "splice point must be positive; check the Gamma parameters"
            )
        self._body_mass = self.splice_quantile
        self._tail_mass = 1.0 - self.splice_quantile
        self._pareto = ParetoDistribution(self.tail_alpha, self.splice_point)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x_arr = np.asarray(x, dtype=float)
        body = np.asarray(self.gamma.cdf(x_arr), dtype=float)
        tail = self._body_mass + self._tail_mass * np.asarray(
            self._pareto.cdf(x_arr), dtype=float
        )
        out = np.where(x_arr <= self.splice_point, body, tail)
        return float(out) if np.isscalar(x) else out

    def ppf(self, q: ArrayLike) -> ArrayLike:
        q_arr = np.asarray(q, dtype=float)
        body = np.asarray(self.gamma.ppf(np.minimum(q_arr, self._body_mass)))
        tail_q = np.clip(
            (q_arr - self._body_mass) / max(self._tail_mass, 1e-300), 0.0, 1.0
        )
        tail = np.asarray(self._pareto.ppf(tail_q), dtype=float)
        out = np.where(q_arr <= self._body_mass, body, tail)
        return float(out) if np.isscalar(q) else out

    @property
    def mean(self) -> float:
        # E[X] = E[X; body] + tail_mass * E[Pareto].
        body_part = self._truncated_gamma_mean()
        if self.tail_alpha <= 1.0:
            return float("inf")
        tail_mean = (
            self.tail_alpha * self.splice_point / (self.tail_alpha - 1.0)
        )
        return body_part + self._tail_mass * tail_mean

    @property
    def variance(self) -> float:
        if self.tail_alpha <= 2.0:
            return float("inf")
        # Second moment: body piece by quadrature, tail in closed form.
        qs = np.linspace(0.0, self._body_mass, 4097)[1:]
        xs = np.asarray(self.gamma.ppf(qs), dtype=float)
        body_second = float(np.trapezoid(xs**2, qs))
        tail_second = (
            self.tail_alpha
            * self.splice_point**2
            / (self.tail_alpha - 2.0)
        )
        second = body_second + self._tail_mass * tail_second
        return second - self.mean**2

    def _truncated_gamma_mean(self) -> float:
        """E[X; X <= splice] of the Gamma body (exact via Gamma identity)."""
        k, theta = self.gamma.shape, self.gamma.scale
        inner = stats.gamma(k + 1.0, scale=theta)
        return k * theta * float(inner.cdf(self.splice_point))

    def __repr__(self) -> str:
        return (
            f"GammaParetoDistribution(shape={self.gamma.shape}, "
            f"scale={self.gamma.scale}, tail_alpha={self.tail_alpha}, "
            f"splice_quantile={self.splice_quantile})"
        )
