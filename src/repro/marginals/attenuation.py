"""Attenuation of the autocorrelation under marginal transforms.

Appendix A of the paper proves that for a self-similar Gaussian
process ``X`` and a measurable transform ``h`` with integrable square,
the process ``Y = h(X)`` is asymptotically self-similar with the *same*
Hurst parameter, and its ACF satisfies ``r_h(k) -> a * r(k)`` as
``k -> infinity`` with the attenuation factor (eq. 30)

.. math::

    a = \\frac{[E(h(X) X)]^2}{\\operatorname{var}(h(X))} \\in (0, 1].

This module computes ``a`` three ways:

- :func:`analytic_attenuation` — Gauss-Hermite quadrature of the
  expectations (no simulation at all);
- :func:`measured_attenuation` — the paper's Step 3: the ratio of the
  foreground to background sample ACFs at large lags (the paper reports
  ``a = 0.94`` for the "Last Action Hero" transform);
- :func:`transformed_acf` — the *full* Hermite-expansion relation
  ``r_h(k) = sum_m c_m^2 r(k)^m / m! / var(h)`` linking the background
  and foreground ACFs at every lag, of which the attenuation factor is
  the ``m = 1`` leading term.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Tuple

import numpy as np

from .._validation import check_1d_array, check_positive_int
from ..exceptions import EstimationError, ValidationError

__all__ = [
    "analytic_attenuation",
    "measured_attenuation",
    "transformed_acf",
    "hermite_coefficients",
]

TransformLike = Callable[[np.ndarray], np.ndarray]


#: Largest stable Gauss-Hermite order; numpy's hermgauss overflows in
#: double precision somewhere above ~250 nodes.
_MAX_QUAD_ORDER = 250


def _gauss_hermite_nodes(order: int) -> Tuple[np.ndarray, np.ndarray]:
    """Nodes/weights for ``E[g(X)]`` with ``X ~ N(0,1)``.

    Orders beyond the double-precision stability limit are clamped.
    """
    order = min(order, _MAX_QUAD_ORDER)
    nodes, weights = np.polynomial.hermite.hermgauss(order)
    return nodes * np.sqrt(2.0), weights / np.sqrt(np.pi)


def hermite_coefficients(
    transform: TransformLike, max_order: int, *, quad_order: int = 200
) -> np.ndarray:
    """Return Hermite coefficients ``c_m = E[h(X) He_m(X)]`` for m=0..max.

    ``He_m`` are the probabilists' Hermite polynomials, orthogonal with
    ``E[He_m(X) He_n(X)] = m! delta_{mn}`` under ``X ~ N(0,1)``.  The
    coefficients drive the exact ACF relation in
    :func:`transformed_acf`.
    """
    max_order = check_positive_int(max_order + 1, "max_order + 1") - 1
    x, w = _gauss_hermite_nodes(quad_order)
    h_values = np.asarray(transform(x), dtype=float)
    if h_values.shape != x.shape:
        raise ValidationError(
            "transform must map an array to an equally shaped array"
        )
    coeffs = np.empty(max_order + 1, dtype=float)
    he_prev = np.zeros_like(x)
    he = np.ones_like(x)
    for m in range(max_order + 1):
        coeffs[m] = float(np.sum(w * h_values * he))
        he_prev, he = he, x * he - m * he_prev  # He_{m+1} recursion
    return coeffs


def analytic_attenuation(
    transform: TransformLike, *, quad_order: int = 200
) -> float:
    """Compute the attenuation factor ``a`` by Gauss-Hermite quadrature.

    Implements eq. 30 with the transform centered first (the paper
    assumes ``E[h(X)] = 0`` without loss of generality):

    .. math:: a = \\frac{[E(h(X)X)]^2}{E(h^2(X)) - [E(h(X))]^2}
    """
    quad_order = check_positive_int(quad_order, "quad_order")
    x, w = _gauss_hermite_nodes(quad_order)
    h_values = np.asarray(transform(x), dtype=float)
    mean_h = float(np.sum(w * h_values))
    var_h = float(np.sum(w * (h_values - mean_h) ** 2))
    if var_h <= 0:
        raise EstimationError(
            "transform is (numerically) constant; attenuation undefined"
        )
    cross = float(np.sum(w * (h_values - mean_h) * x))
    return cross**2 / var_h


def transformed_acf(
    background_acf: Sequence[float],
    transform: TransformLike,
    *,
    max_order: int = 30,
    quad_order: int = 200,
) -> np.ndarray:
    """Exact foreground ACF implied by a background ACF and transform.

    Uses the Hermite expansion: with ``c_m`` the Hermite coefficients
    of ``h`` and ``r(k)`` the background ACF,

    .. math::

        r_h(k) = \\frac{\\sum_{m \\ge 1} (c_m^2 / m!) \\; r(k)^m}
                       {\\sum_{m \\ge 1} c_m^2 / m!}.

    The series is truncated at ``max_order`` (coefficients decay
    factorially for smooth transforms).  This gives the *entire*
    foreground ACF without any simulation — a stronger tool than the
    asymptotic factor alone and the basis of the model's calibration.
    """
    r = check_1d_array(background_acf, "background_acf")
    coeffs = hermite_coefficients(
        transform, max_order, quad_order=quad_order
    )
    m = np.arange(1, coeffs.size)
    weights = coeffs[1:] ** 2 / np.array(
        [float(math.factorial(int(k))) for k in m]
    )
    total = weights.sum()
    if total <= 0:
        raise EstimationError(
            "transform has no Hermite mass beyond order 0; ACF undefined"
        )
    powers = r[:, None] ** m[None, :]
    return (powers @ weights) / total


def measured_attenuation(
    background_acf: Sequence[float],
    foreground_acf: Sequence[float],
    *,
    lag_range: Tuple[int, int] = (100, 400),
) -> float:
    """Measure ``a`` as the ACF ratio at large lags (paper Step 3).

    Averages ``r_h(k) / r(k)`` over ``lag_range`` (inclusive bounds),
    skipping lags where the background ACF is too small for a stable
    ratio.  The result is clipped to ``(0, 1]`` — values slightly above
    1 can occur from sampling noise.
    """
    r = check_1d_array(background_acf, "background_acf")
    rh = check_1d_array(foreground_acf, "foreground_acf")
    if r.size != rh.size:
        raise ValidationError(
            "background and foreground ACFs must have equal length"
        )
    lo, hi = lag_range
    lo = check_positive_int(lo, "lag_range[0]")
    hi = check_positive_int(hi, "lag_range[1]")
    if hi < lo:
        raise ValidationError("lag_range must be (low, high) with low <= high")
    hi = min(hi, r.size - 1)
    if hi < lo:
        raise ValidationError(
            f"lag_range starts at {lo} but ACF has only {r.size - 1} lags"
        )
    lags = np.arange(lo, hi + 1)
    stable = np.abs(r[lags]) > 0.05
    if not np.any(stable):
        raise EstimationError(
            "background ACF is too small over the lag range to measure a"
        )
    ratios = rh[lags][stable] / r[lags][stable]
    return float(np.clip(np.mean(ratios), 1e-12, 1.0))
