"""Marginal-distribution substrate.

The paper's foreground process is obtained from the Gaussian background
by the inversion transform ``Y = h(X) = F_Y^{-1}(F_X(X))`` (eq. 7),
where ``F_Y`` is either an inverted empirical histogram (the paper's
choice) or a parametric model such as the Gamma/Pareto hybrid of
Garrett & Willinger.  This subpackage provides both, the transform
itself, and the attenuation-factor machinery of Appendix A.
"""

from .attenuation import (
    analytic_attenuation,
    hermite_coefficients,
    measured_attenuation,
    transformed_acf,
)
from .empirical import EmpiricalDistribution
from .fitting import fit_gamma, fit_gamma_pareto, fit_pareto_tail
from .parametric import (
    GammaDistribution,
    GammaParetoDistribution,
    LognormalDistribution,
    MarginalDistribution,
    NormalDistribution,
    ParetoDistribution,
)
from .transform import MarginalTransform

__all__ = [
    "MarginalDistribution",
    "EmpiricalDistribution",
    "GammaDistribution",
    "ParetoDistribution",
    "GammaParetoDistribution",
    "LognormalDistribution",
    "NormalDistribution",
    "MarginalTransform",
    "analytic_attenuation",
    "measured_attenuation",
    "transformed_acf",
    "hermite_coefficients",
    "fit_gamma",
    "fit_pareto_tail",
    "fit_gamma_pareto",
]
