"""Empirical marginal distributions via histogram inversion.

The paper obtains ``F_Y`` "by inverting the empirical distribution
directly" (§3.1) rather than by fitting a parametric model.  Two
inversion flavours are provided:

- ``method="histogram"`` — the paper's histogram-based technique: the
  CDF is piecewise linear across histogram bins, so the inverse spreads
  samples uniformly within each bin (smooth output, no repeated
  values).
- ``method="exact"`` — straight ECDF inversion, i.e. the quantile
  function of the raw samples (output values are a resampling of the
  observed ones).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .._validation import check_min_length, check_positive_int
from ..exceptions import ValidationError
from ..stats.histogram import Histogram, frequency_histogram
from .parametric import MarginalDistribution

__all__ = ["EmpiricalDistribution"]

ArrayLike = Union[float, np.ndarray]


class EmpiricalDistribution(MarginalDistribution):
    """Distribution backed by observed samples.

    Parameters
    ----------
    samples:
        Observed values (e.g. bytes per frame of an empirical trace).
    bins:
        Number of histogram bins for ``method="histogram"``.
    method:
        ``"histogram"`` (piecewise-linear CDF over bins, the paper's
        technique) or ``"exact"`` (raw ECDF inversion).
    """

    def __init__(
        self,
        samples: Sequence[float],
        *,
        bins: int = 200,
        method: str = "histogram",
    ) -> None:
        self._samples = np.sort(check_min_length(samples, "samples", 2))
        if method not in ("histogram", "exact"):
            raise ValidationError(
                f"method must be 'histogram' or 'exact', got {method!r}"
            )
        self.method = method
        self.bins = check_positive_int(bins, "bins")
        self._histogram = frequency_histogram(self._samples, bins=self.bins)
        edges = self._histogram.edges
        cum = np.concatenate([[0.0], np.cumsum(self._histogram.frequencies)])
        cum[-1] = 1.0
        # Piecewise-linear CDF knots: (edges, cumulative mass).
        self._cdf_x = edges
        self._cdf_y = cum

    @property
    def samples(self) -> np.ndarray:
        """The sorted observed samples (a copy)."""
        return self._samples.copy()

    @property
    def histogram(self) -> Histogram:
        """The underlying frequency histogram."""
        return self._histogram

    @property
    def mean(self) -> float:
        return float(self._samples.mean())

    @property
    def variance(self) -> float:
        return float(self._samples.var(ddof=1))

    def cdf(self, x: ArrayLike) -> ArrayLike:
        """Evaluate the (histogram or exact) empirical CDF."""
        x_arr = np.asarray(x, dtype=float)
        if self.method == "histogram":
            out = np.interp(
                x_arr, self._cdf_x, self._cdf_y, left=0.0, right=1.0
            )
        else:
            out = np.searchsorted(
                self._samples, x_arr, side="right"
            ) / self._samples.size
        return float(out) if np.isscalar(x) else np.asarray(out, dtype=float)

    def ppf(self, q: ArrayLike) -> ArrayLike:
        """Invert the empirical CDF at probability levels ``q``."""
        q_arr = np.clip(np.asarray(q, dtype=float), 0.0, 1.0)
        if self.method == "histogram":
            out = np.interp(q_arr, self._cdf_y, self._cdf_x)
        else:
            out = np.quantile(self._samples, q_arr)
        return float(out) if np.isscalar(q) else np.asarray(out, dtype=float)

    def __repr__(self) -> str:
        return (
            f"EmpiricalDistribution(n={self._samples.size}, "
            f"bins={self.bins}, method={self.method!r})"
        )
