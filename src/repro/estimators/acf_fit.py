"""Fitting the composite SRD + LRD autocorrelation model (eq. 10-13).

Step 2 of the paper's pipeline: given an empirical autocorrelation
(Fig. 5), find the "knee" lag ``Kt`` that separates the fast,
exponential decay (short-range dependence) from the slow, power-law
decay (long-range dependence), and least-squares fit

- ``sum_i w_i exp(-beta_i k)`` to the lags below the knee, and
- ``L k^{-gamma}`` to the lags at and above the knee.

The paper fixes the LRD exponent from the Hurst estimate
(``gamma = 2 - 2H``) and fits the remaining parameters; we support both
that and a free-exponent fit.  Knee detection scans candidate knees and
minimises the combined squared error, which recovers the paper's
"intersection of the two fitting curves" heuristic (the error is
minimised when the pieces meet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from .._validation import (
    check_1d_array,
    check_positive_int,
)
from ..exceptions import EstimationError, ValidationError
from ..processes.correlation import CompositeCorrelation
from .regression import fit_line

__all__ = ["AcfFit", "fit_composite_acf", "detect_knee"]


@dataclass(frozen=True)
class AcfFit:
    """Result of fitting the composite SRD+LRD model to a sample ACF.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.processes.correlation.CompositeCorrelation`.
    knee:
        Selected knee lag ``Kt``.
    rmse:
        Root-mean-square error of the fit over the fitted lag range.
    srd_rmse, lrd_rmse:
        Fit errors of the exponential head and power-law tail parts.
    """

    model: CompositeCorrelation
    knee: int
    rmse: float
    srd_rmse: float
    lrd_rmse: float

    @property
    def hurst(self) -> Optional[float]:
        """Hurst parameter implied by the fitted tail exponent."""
        return self.model.hurst


def _fit_power_tail(
    lags: np.ndarray,
    acf: np.ndarray,
    exponent: Optional[float],
) -> Tuple[float, float, float]:
    """Fit ``L k^-gamma`` on (lags, acf); return (L, gamma, rmse)."""
    positive = acf > 0
    if positive.sum() < 2:
        raise EstimationError(
            "not enough positive tail autocorrelations for a power-law fit"
        )
    log_k = np.log(lags[positive])
    log_r = np.log(acf[positive])
    if exponent is None:
        fit = fit_line(log_k, log_r)
        gamma = -fit.slope
        amplitude = float(np.exp(fit.intercept))
    else:
        gamma = float(exponent)
        amplitude = float(np.exp(np.mean(log_r + gamma * log_k)))
    predicted = amplitude * lags ** (-gamma)
    rmse = float(np.sqrt(np.mean((predicted - acf) ** 2)))
    return amplitude, gamma, rmse


def _fit_exponential_head(
    lags: np.ndarray,
    acf: np.ndarray,
    num_exponentials: int,
    fit_nugget: bool,
) -> Tuple[np.ndarray, np.ndarray, float, float]:
    """Fit ``(1 - w0) sum_i w_i exp(-b_i k)`` to the head lags.

    Returns ``(weights, rates, nugget, rmse)``; ``weights`` are
    normalized to sum to 1 and ``nugget`` is the lag-0 white-noise mass
    (always 0 when ``fit_nugget`` is False, matching the paper's strict
    eq. 10-11 form).
    """
    positive = acf > 0
    if positive.sum() < 2:
        raise EstimationError(
            "not enough positive head autocorrelations for an "
            "exponential fit"
        )
    if num_exponentials == 1:
        fit = fit_line(lags[positive], np.log(acf[positive]))
        if fit_nugget:
            # Take the decay rate from the log-linear slope but anchor
            # the amplitude so the head passes exactly through the
            # first positive lag: (1 - w0) exp(-rate * k1) = r(k1).
            # Anchoring beats using the regression intercept because a
            # not-quite-exponential head otherwise dumps its curvature
            # into a spurious nugget.
            rate = max(-fit.slope, 1e-12)
            k1 = float(lags[positive][0])
            r1 = float(acf[positive][0])
            amplitude = float(np.clip(r1 * np.exp(rate * k1), 1e-6, 1.0))
        else:
            # Regression through the origin pins the amplitude at 1.
            amplitude = 1.0
            k = lags[positive]
            rate = max(
                -float(np.sum(k * np.log(acf[positive])) / np.sum(k * k)),
                1e-12,
            )
        weights = np.array([1.0])
        rates = np.array([rate])
        nugget = 1.0 - amplitude
    else:
        # Parameterize softmax logits over the j exponentials (plus the
        # nugget as an extra category when fitted) and j log-rates.
        j = num_exponentials
        n_logits = j if fit_nugget else j - 1
        init_rates = np.log(np.logspace(-2.5, -0.5, j))
        init = np.concatenate([np.zeros(n_logits), init_rates])

        def unpack(params: np.ndarray):
            logits = np.concatenate([params[:n_logits], [0.0]])
            masses = np.exp(logits - logits.max())
            masses = masses / masses.sum()
            if fit_nugget:
                w0 = masses[-1]
                w = masses[:-1]
            else:
                w0 = 0.0
                w = masses
            b = np.exp(params[n_logits:])
            return w, b, w0

        def residuals(params: np.ndarray) -> np.ndarray:
            w, b, w0 = unpack(params)
            predicted = np.exp(-np.outer(lags, b)) @ w
            return predicted - acf

        solution = least_squares(residuals, init, method="lm", max_nfev=5000)
        raw_weights, rates, nugget = unpack(solution.x)
        total = raw_weights.sum()
        if total <= 0:
            raise EstimationError(
                "exponential head fit collapsed onto the nugget"
            )
        weights = raw_weights / total
        nugget = float(nugget)
    predicted = (1.0 - nugget) * (np.exp(-np.outer(lags, rates)) @ weights)
    rmse = float(np.sqrt(np.mean((predicted - acf) ** 2)))
    return weights, rates, float(nugget), rmse


def detect_knee(
    acf: Sequence[float],
    *,
    candidates: Optional[Sequence[int]] = None,
    num_exponentials: int = 1,
    lrd_exponent: Optional[float] = None,
    fit_nugget: bool = True,
) -> int:
    """Return the knee lag minimising the combined SRD+LRD fit error.

    ``acf`` is the sample autocorrelation with ``acf[0] = 1``;
    candidate knees default to every fifth lag between 10 and 60% of
    the available lags.
    """
    arr = check_1d_array(acf, "acf")
    max_lag = arr.size - 1
    if candidates is None:
        upper = min(max(8, int(0.6 * max_lag)), max_lag - 4)
        grid = np.unique(
            np.round(np.logspace(np.log10(5), np.log10(upper), 25))
        )
        candidates = [int(c) for c in grid]
    best_knee = None
    best_error = np.inf
    for knee in candidates:
        knee = int(knee)
        if knee < 4 or knee > max_lag - 4:
            continue
        try:
            fit = fit_composite_acf(
                arr,
                knee=knee,
                num_exponentials=num_exponentials,
                lrd_exponent=lrd_exponent,
                fit_nugget=fit_nugget,
            )
        except (EstimationError, ValidationError):
            continue
        if fit.rmse < best_error:
            best_error = fit.rmse
            best_knee = knee
    if best_knee is None:
        raise EstimationError("no candidate knee produced a valid fit")
    return best_knee


def fit_composite_acf(
    acf: Sequence[float],
    *,
    knee: Optional[int] = None,
    num_exponentials: int = 1,
    lrd_exponent: Optional[float] = None,
    fit_nugget: bool = True,
) -> AcfFit:
    """Fit the composite SRD+LRD correlation model to a sample ACF.

    Parameters
    ----------
    acf:
        Sample autocorrelation at lags ``0 .. max_lag`` with
        ``acf[0] = 1`` (as returned by
        :func:`~repro.estimators.acf.sample_acf`).
    knee:
        The knee lag ``Kt``.  ``None`` runs :func:`detect_knee`.
    num_exponentials:
        Number of exponential terms in the SRD mixture (the paper uses
        one).
    lrd_exponent:
        Fix the power-law exponent ``gamma`` (e.g. ``2 - 2H`` from a
        Hurst estimate, as the paper does with ``gamma = 0.2``);
        ``None`` fits it freely.
    fit_nugget:
        Allow a lag-0 white-noise mass (instantaneous drop from
        ``r(0) = 1``).  The paper's strict eq. 10-11 form corresponds
        to ``fit_nugget=False``; real traces with per-frame coding
        noise fit markedly better with the nugget enabled.

    Returns
    -------
    AcfFit
        The fitted model with diagnostics.
    """
    arr = check_1d_array(acf, "acf")
    num_exponentials = check_positive_int(
        num_exponentials, "num_exponentials"
    )
    if arr.size < 10:
        raise ValidationError(
            f"need at least 10 ACF lags to fit, got {arr.size}"
        )
    if abs(arr[0] - 1.0) > 1e-6:
        raise ValidationError(f"acf[0] must be 1, got {arr[0]}")
    if knee is None:
        knee = detect_knee(
            arr,
            num_exponentials=num_exponentials,
            lrd_exponent=lrd_exponent,
            fit_nugget=fit_nugget,
        )
    knee = check_positive_int(knee, "knee")
    max_lag = arr.size - 1
    if not 4 <= knee <= max_lag - 4:
        raise ValidationError(
            f"knee={knee} must leave at least 4 lags on each side of the "
            f"range 1..{max_lag}"
        )

    lags = np.arange(arr.size, dtype=float)
    head_lags = lags[1:knee]
    head_acf = arr[1:knee]
    tail_lags = lags[knee:]
    tail_acf = arr[knee:]

    weights, rates, nugget, srd_rmse = _fit_exponential_head(
        head_lags, head_acf, num_exponentials, fit_nugget
    )
    amplitude, gamma, lrd_rmse = _fit_power_tail(
        tail_lags, tail_acf, lrd_exponent
    )
    # Keep the tail a valid correlation at the knee.
    amplitude = min(amplitude, 0.999 * knee**gamma)
    model = CompositeCorrelation(
        srd_weights=weights,
        srd_rates=rates,
        lrd_amplitude=amplitude,
        lrd_exponent=gamma,
        knee=float(knee),
        nugget=nugget,
    )
    predicted = np.asarray(model(lags[1:]), dtype=float)
    rmse = float(np.sqrt(np.mean((predicted - arr[1:]) ** 2)))
    return AcfFit(
        model=model,
        knee=knee,
        rmse=rmse,
        srd_rmse=srd_rmse,
        lrd_rmse=lrd_rmse,
    )
