"""Periodogram-based Hurst estimation (extension).

A long-range dependent process has spectral density
``f(lambda) ~ c |lambda|^{1 - 2H}`` near the origin, so a least-squares
line through ``log I(lambda_j)`` versus ``log lambda_j`` over the
lowest frequencies estimates ``1 - 2H``.  This estimator is one of the
approaches recommended by Leland et al. (the paper's reference [18]);
it complements the paper's variance-time and R/S estimators and serves
as a cross-check in our benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_in_range, check_min_length
from ..exceptions import EstimationError
from .regression import LineFit, fit_line

__all__ = ["MIN_LENGTH", "PeriodogramEstimate", "periodogram_estimate"]

#: Minimum series length: enough positive Fourier frequencies that the
#: default low-frequency regression has at least two ordinates.
MIN_LENGTH = 16


@dataclass(frozen=True)
class PeriodogramEstimate:
    """Result of a periodogram regression.

    Attributes
    ----------
    hurst:
        Estimated Hurst parameter ``(1 - slope) / 2``.
    fit:
        Underlying log-log fit of ``I(lambda)`` on ``lambda``.
    frequencies:
        Fourier frequencies used in the fit.
    power:
        Periodogram ordinates used in the fit.
    """

    hurst: float
    fit: LineFit
    frequencies: np.ndarray
    power: np.ndarray


def periodogram_estimate(
    values: Sequence[float],
    *,
    frequency_fraction: float = 0.1,
) -> PeriodogramEstimate:
    """Estimate the Hurst parameter from the low-frequency periodogram.

    Parameters
    ----------
    values:
        The observed series.
    frequency_fraction:
        Fraction of the lowest non-zero Fourier frequencies used in the
        regression (default 10%, the conventional choice).
    """
    arr = check_min_length(values, "values", MIN_LENGTH)
    fraction = check_in_range(
        frequency_fraction,
        "frequency_fraction",
        0.0,
        1.0,
        inclusive_low=False,
    )
    n = arr.size
    centered = arr - arr.mean()
    spectrum = np.fft.rfft(centered)
    # Skip the zero frequency; periodogram ordinate I = |FFT|^2 / (2 pi n).
    power = (np.abs(spectrum[1:]) ** 2) / (2.0 * np.pi * n)
    freqs = 2.0 * np.pi * np.arange(1, power.size + 1) / n
    keep = max(2, int(np.floor(power.size * fraction)))
    power = power[:keep]
    freqs = freqs[:keep]
    positive = power > 0
    if positive.sum() < 2:
        raise EstimationError(
            "not enough positive periodogram ordinates for regression"
        )
    fit = fit_line(np.log10(freqs[positive]), np.log10(power[positive]))
    return PeriodogramEstimate(
        hurst=(1.0 - fit.slope) / 2.0,
        fit=fit,
        frequencies=freqs,
        power=power,
    )
