"""Cross-estimator statistical bake-off harness (paired design).

The paper adopts ``H ~= 0.92`` from an R/S pox diagram and cross-checks
it with a variance-time plot — both graphical estimators with
substantial small-sample bias.  This module quantifies that bias: it
generates known-``H`` traces through the backend registry and runs
*every* registered Hurst estimator on the *same* paths (a paired
design, so estimator differences are not confounded with path noise),
reporting per-estimator bias, standard deviation, RMSE and nominal CI
coverage per ``(backend, hurst, horizon)`` cell.

Design
------
- **Paired paths.** Each cell draws ``replications`` paths once (one
  child generator per cell via :func:`~repro.stats.random.spawn_rngs`,
  so the path set is independent of which estimators run) and feeds
  the identical array to every estimator.
- **Failure isolation.** An estimator raising
  :class:`~repro.exceptions.EstimationError` on one path contributes
  ``nan`` to that cell and bumps the ``bakeoff.failures`` counter;
  the bake-off itself never aborts mid-matrix.
- **Nominal CIs.** Where an estimator exposes a slope standard error
  (:attr:`~repro.estimators.regression.LineFit.stderr`), a nominal
  95% interval ``hurst ± 1.96 se_H`` is scored against the true ``H``.
  Log-log regression points are correlated, so these intervals
  under-cover — the harness *measures* by how much rather than
  pretending the OLS theory applies.

Observability
-------------
With a ``metrics=`` context the run records ``bakeoff.cells``,
``bakeoff.paths``, ``bakeoff.estimates`` and ``bakeoff.failures``
counters, ``bakeoff.generate_seconds`` / ``bakeoff.estimator_seconds``
timers, and ``bakeoff.bias`` / ``bakeoff.rmse`` / ``bakeoff.coverage``
gauges labelled by estimator/backend/hurst/horizon (catalogued in
``docs/observability.md``).  Passing ``metrics=None`` routes through
the shared :data:`~repro.observability.NULL_CONTEXT`; the benchmark
suite holds the metrics-off path to a <2% overhead bound.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_in_range, check_positive_int
from ..exceptions import EstimationError, ValidationError
from ..observability import ensure_context
from ..processes import registry
from ..processes.correlation import FGNCorrelation
from ..stats.random import RandomState, spawn_rngs
from . import dfa, mavar, periodogram, rs_analysis, variance_time, whittle
from .dfa import dfa_estimate
from .mavar import mavar_estimate
from .periodogram import periodogram_estimate
from .rs_analysis import rs_estimate
from .variance_time import variance_time_estimate
from .whittle import whittle_estimate

__all__ = [
    "EstimatorSpec",
    "HURST_ESTIMATORS",
    "BakeoffCell",
    "BakeoffResult",
    "run_bakeoff",
]

#: z-score of the nominal two-sided 95% interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class EstimatorSpec:
    """One Hurst estimator entered in the bake-off.

    Attributes
    ----------
    name:
        Registry key (matches the CLI ``--estimators`` tokens).
    run:
        ``run(values) -> (hurst, hurst_stderr)`` returning the Hurst
        point estimate (estimator defaults) and the nominal standard
        error of the *Hurst* estimate — the slope standard error
        mapped through the estimator's slope-to-H transform, or
        ``nan`` when the estimator provides none (Whittle).
    min_length:
        Shortest series the estimator accepts (its ``MIN_LENGTH``).
    """

    name: str
    run: Callable[[np.ndarray], Tuple[float, float]]
    min_length: int

    def estimate(self, values: np.ndarray) -> float:
        """The Hurst point estimate alone."""
        return self.run(values)[0]


def _run_variance_time(x: np.ndarray) -> Tuple[float, float]:
    est = variance_time_estimate(x)
    return est.hurst, est.fit.stderr / 2.0


def _run_rs(x: np.ndarray) -> Tuple[float, float]:
    est = rs_estimate(x)
    return est.hurst, est.fit.stderr


def _run_periodogram(x: np.ndarray) -> Tuple[float, float]:
    est = periodogram_estimate(x)
    return est.hurst, est.fit.stderr / 2.0


def _run_dfa(x: np.ndarray) -> Tuple[float, float]:
    est = dfa_estimate(x)
    return est.hurst, est.fit.stderr


def _run_whittle(x: np.ndarray) -> Tuple[float, float]:
    return whittle_estimate(x).hurst, float("nan")


def _run_mavar(x: np.ndarray) -> Tuple[float, float]:
    est = mavar_estimate(x)
    return est.hurst, est.fit.stderr / 2.0


#: The default bake-off field: every Hurst estimator in the library.
#: H maps from the fitted slope as slope itself (R/S, DFA),
#: (1 - slope)/2 (variance-time via beta, periodogram) or
#: (slope + 2)/2 (MAVAR), so the slope standard error scales by the
#: same factor.
HURST_ESTIMATORS: Dict[str, EstimatorSpec] = {
    spec.name: spec
    for spec in (
        EstimatorSpec(
            "variance_time", _run_variance_time, variance_time.MIN_LENGTH
        ),
        EstimatorSpec("rs", _run_rs, rs_analysis.MIN_LENGTH),
        EstimatorSpec(
            "periodogram", _run_periodogram, periodogram.MIN_LENGTH
        ),
        EstimatorSpec("dfa", _run_dfa, dfa.MIN_LENGTH),
        EstimatorSpec("whittle", _run_whittle, whittle.MIN_LENGTH),
        EstimatorSpec("mavar", _run_mavar, mavar.MIN_LENGTH),
    )
}


@dataclass(frozen=True)
class BakeoffCell:
    """One ``(estimator, backend, hurst, horizon)`` cell of the matrix.

    Attributes
    ----------
    estimator, backend:
        Registry names.
    hurst:
        True Hurst parameter of the generated paths.
    horizon:
        Path length in samples.
    estimates:
        Per-replication Hurst estimates (``nan`` where the estimator
        failed on a path).
    stderrs:
        Per-replication nominal Hurst standard errors (``nan`` where
        unavailable).
    seconds:
        Wall-clock seconds this estimator spent on the cell's paths.
    """

    estimator: str
    backend: str
    hurst: float
    horizon: int
    estimates: np.ndarray
    stderrs: np.ndarray
    seconds: float

    @property
    def failures(self) -> int:
        """Number of replications on which the estimator failed."""
        return int(np.count_nonzero(~np.isfinite(self.estimates)))

    @property
    def bias(self) -> float:
        """Mean estimate minus the true ``H`` (nan if nothing finite)."""
        finite = self.estimates[np.isfinite(self.estimates)]
        if finite.size == 0:
            return float("nan")
        return float(finite.mean() - self.hurst)

    @property
    def std(self) -> float:
        """Sample standard deviation of the finite estimates."""
        finite = self.estimates[np.isfinite(self.estimates)]
        if finite.size < 2:
            return float("nan")
        return float(finite.std(ddof=1))

    @property
    def rmse(self) -> float:
        """Root mean squared error against the true ``H``."""
        finite = self.estimates[np.isfinite(self.estimates)]
        if finite.size == 0:
            return float("nan")
        return float(np.sqrt(np.mean((finite - self.hurst) ** 2)))

    @property
    def coverage(self) -> float:
        """Empirical coverage of the nominal 95% interval (nan if none)."""
        ok = np.isfinite(self.estimates) & np.isfinite(self.stderrs)
        if not ok.any():
            return float("nan")
        half = _Z95 * self.stderrs[ok]
        hit = np.abs(self.estimates[ok] - self.hurst) <= half
        return float(np.mean(hit))


@dataclass(frozen=True)
class BakeoffResult:
    """Full bake-off matrix plus summary accessors.

    Attributes
    ----------
    hursts, horizons, backends, estimators:
        The grids the matrix spans.
    replications:
        Paths per cell.
    cells:
        Every :class:`BakeoffCell`, ordered backend-major then hurst,
        horizon, estimator (deterministic for a fixed seed).
    """

    hursts: Tuple[float, ...]
    horizons: Tuple[int, ...]
    backends: Tuple[str, ...]
    estimators: Tuple[str, ...]
    replications: int
    cells: Tuple[BakeoffCell, ...] = field(repr=False)

    def cell(
        self,
        estimator: str,
        backend: str,
        hurst: float,
        horizon: int,
    ) -> BakeoffCell:
        """Look up one cell (raises ``ValidationError`` when absent)."""
        for c in self.cells:
            if (
                c.estimator == estimator
                and c.backend == backend
                and math.isclose(c.hurst, hurst)
                and c.horizon == horizon
            ):
                return c
        raise ValidationError(
            f"no bake-off cell ({estimator!r}, {backend!r}, "
            f"hurst={hurst}, horizon={horizon})"
        )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Pooled |bias|, std, RMSE, coverage per estimator.

        Pooling averages the per-cell values over the whole grid
        (cells where a metric is ``nan`` — e.g. Whittle coverage —
        are skipped for that metric).
        """
        out: Dict[str, Dict[str, float]] = {}
        for name in self.estimators:
            rows = [c for c in self.cells if c.estimator == name]
            out[name] = {
                "abs_bias": _nanmean([abs(c.bias) for c in rows]),
                "std": _nanmean([c.std for c in rows]),
                "rmse": _nanmean([c.rmse for c in rows]),
                "coverage": _nanmean([c.coverage for c in rows]),
                "failures": float(sum(c.failures for c in rows)),
                "seconds": float(sum(c.seconds for c in rows)),
            }
        return out

    def winner(self, metric: str = "rmse") -> str:
        """Estimator with the smallest pooled ``metric``.

        ``metric`` is one of ``"rmse"``, ``"abs_bias"``, ``"std"``.
        """
        if metric not in ("rmse", "abs_bias", "std"):
            raise ValidationError(
                f"metric must be 'rmse', 'abs_bias' or 'std', "
                f"got {metric!r}"
            )
        summary = self.summary()
        ranked = [
            (summary[name][metric], name)
            for name in self.estimators
            if math.isfinite(summary[name][metric])
        ]
        if not ranked:
            raise EstimationError(
                "bake-off produced no finite estimates to rank"
            )
        return min(ranked)[1]

    def table(self) -> str:
        """ASCII summary table (pooled metrics, winner-first order)."""
        summary = self.summary()
        order = sorted(
            self.estimators,
            key=lambda n: (
                not math.isfinite(summary[n]["rmse"]),
                summary[n]["rmse"],
            ),
        )
        header = (
            f"{'estimator':<14} {'|bias|':>8} {'std':>8} "
            f"{'rmse':>8} {'cover95':>8} {'fail':>5} {'sec':>7}"
        )
        lines = [header, "-" * len(header)]
        for name in order:
            row = summary[name]
            lines.append(
                f"{name:<14} {row['abs_bias']:>8.4f} {row['std']:>8.4f} "
                f"{row['rmse']:>8.4f} {_fmt_cov(row['coverage']):>8} "
                f"{int(row['failures']):>5d} {row['seconds']:>7.2f}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (grids, summary, per-cell stats)."""
        return {
            "hursts": list(self.hursts),
            "horizons": list(self.horizons),
            "backends": list(self.backends),
            "estimators": list(self.estimators),
            "replications": self.replications,
            "winner_rmse": self.winner("rmse"),
            "summary": self.summary(),
            "cells": [
                {
                    "estimator": c.estimator,
                    "backend": c.backend,
                    "hurst": c.hurst,
                    "horizon": c.horizon,
                    "bias": c.bias,
                    "std": c.std,
                    "rmse": c.rmse,
                    "coverage": c.coverage,
                    "failures": c.failures,
                    "seconds": c.seconds,
                }
                for c in self.cells
            ],
        }


def _nanmean(values: Sequence[float]) -> float:
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if not finite:
        return float("nan")
    return float(np.mean(finite))


def _fmt_cov(value: float) -> str:
    return "-" if not math.isfinite(value) else f"{value:.2f}"


def run_bakeoff(
    *,
    hursts: Sequence[float] = (0.6, 0.7, 0.8, 0.9),
    horizons: Sequence[int] = (1 << 12, 1 << 14),
    backends: Sequence[str] = ("davies_harte",),
    estimators: Optional[Sequence[str]] = None,
    replications: int = 8,
    random_state: RandomState = None,
    metrics=None,
) -> BakeoffResult:
    """Run the paired cross-estimator bake-off.

    Parameters
    ----------
    hursts:
        True Hurst parameters of the generated fGn paths, each in
        (0, 1).
    horizons:
        Path lengths in samples.
    backends:
        Backend registry names used to generate paths (``"all"``
        expands to every registered backend).
    estimators:
        Estimator names from :data:`HURST_ESTIMATORS`; default all six.
    replications:
        Paths per ``(backend, hurst, horizon)`` cell; every estimator
        sees the identical path set.
    random_state:
        Seed or generator; one child stream is spawned per path cell,
        so the matrix is reproducible and cells are independent.
    metrics:
        Optional :class:`~repro.observability.RunContext`; see the
        module docstring for the ``bakeoff.*`` catalogue.
    """
    hursts = tuple(
        check_in_range(
            float(h), "hurst", 0.0, 1.0,
            inclusive_low=False, inclusive_high=False,
        )
        for h in hursts
    )
    horizons = tuple(
        check_positive_int(int(n), "horizon") for n in horizons
    )
    if isinstance(backends, str):
        backends = (backends,)
    if len(backends) == 1 and backends[0] == "all":
        backends = registry.names()
    backends = tuple(registry.get(name).name for name in backends)
    if estimators is None:
        estimators = tuple(HURST_ESTIMATORS)
    else:
        unknown = [e for e in estimators if e not in HURST_ESTIMATORS]
        if unknown:
            available = ", ".join(repr(n) for n in HURST_ESTIMATORS)
            raise ValidationError(
                f"estimator must be one of {available}, "
                f"got {unknown[0]!r}"
            )
        estimators = tuple(estimators)
    replications = check_positive_int(replications, "replications")
    if not hursts or not horizons or not backends or not estimators:
        raise ValidationError(
            "bake-off needs at least one hurst, horizon, backend "
            "and estimator"
        )
    min_horizon = min(horizons)
    for name in estimators:
        spec = HURST_ESTIMATORS[name]
        if min_horizon < spec.min_length:
            raise ValidationError(
                f"horizon must be at least {spec.min_length} for "
                f"estimator {name!r}, got {min_horizon}"
            )

    ctx = ensure_context(metrics)
    path_cells = [
        (backend, h, horizon)
        for backend in backends
        for h in hursts
        for horizon in horizons
    ]
    rngs = spawn_rngs(random_state, len(path_cells))

    cells = []
    for (backend, h, horizon), rng in zip(path_cells, rngs):
        source = registry.create(backend, FGNCorrelation(h))
        with ctx.time("bakeoff.generate_seconds", backend=backend):
            paths = source.sample(
                horizon, size=replications, random_state=rng
            )
        ctx.inc("bakeoff.paths", replications, backend=backend)
        for name in estimators:
            spec = HURST_ESTIMATORS[name]
            estimates = np.full(replications, np.nan)
            stderrs = np.full(replications, np.nan)
            start = time.perf_counter()
            for i in range(replications):
                try:
                    estimates[i], stderrs[i] = spec.run(paths[i])
                except EstimationError:
                    ctx.inc(
                        "bakeoff.failures",
                        estimator=name,
                        backend=backend,
                    )
            seconds = time.perf_counter() - start
            cell = BakeoffCell(
                estimator=name,
                backend=backend,
                hurst=h,
                horizon=horizon,
                estimates=estimates,
                stderrs=stderrs,
                seconds=seconds,
            )
            cells.append(cell)
            ctx.inc("bakeoff.cells")
            ctx.inc(
                "bakeoff.estimates",
                replications - cell.failures,
                estimator=name,
            )
            ctx.timer(
                "bakeoff.estimator_seconds", estimator=name
            ).observe(seconds)
            labels = dict(
                estimator=name,
                backend=backend,
                hurst=f"{h:g}",
                horizon=str(horizon),
            )
            ctx.set("bakeoff.bias", cell.bias, **labels)
            ctx.set("bakeoff.rmse", cell.rmse, **labels)
            if math.isfinite(cell.coverage):
                ctx.set("bakeoff.coverage", cell.coverage, **labels)

    return BakeoffResult(
        hursts=hursts,
        horizons=horizons,
        backends=backends,
        estimators=estimators,
        replications=replications,
        cells=tuple(cells),
    )
