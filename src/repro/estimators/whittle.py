"""Whittle (frequency-domain maximum likelihood) Hurst estimation.

The graphical estimators the paper uses (variance-time, R/S) are easy
to read off a plot but statistically inefficient.  The Whittle
estimator minimises the approximate frequency-domain log-likelihood

.. math::

    Q(H) = \\sum_j \\left( \\log f_H(\\lambda_j)
           + \\frac{I(\\lambda_j)}{f_H(\\lambda_j)} \\right)

over the Fourier frequencies, where ``I`` is the periodogram and
``f_H`` the model spectral density (here: exact fractional Gaussian
noise, computed by discrete-time Fourier transform of the FGN
autocovariance).  It is the estimator of record in Leland et al. (the
paper's reference [18]) for confirmatory analysis, and we provide it
as a cross-check for the pipeline's Step 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import minimize_scalar

from .._validation import check_in_range, check_min_length, check_positive_int
from ..exceptions import EstimationError
from ..processes.correlation import FGNCorrelation

__all__ = [
    "MIN_LENGTH",
    "WhittleEstimate",
    "whittle_estimate",
    "fgn_spectral_density",
]

#: Minimum series length: enough Fourier frequencies that the profile
#: Whittle objective is meaningfully peaked (the default keeps at
#: least 8 ordinates).
MIN_LENGTH = 64


def fgn_spectral_density(
    hurst: float,
    frequencies: Sequence[float],
    *,
    acvf_terms: int = 1 << 17,
) -> np.ndarray:
    """FGN spectral density at angular ``frequencies`` in (0, pi].

    Computed as the truncated discrete-time Fourier transform of the
    exact FGN autocovariance,

    .. math:: f(\\lambda) = \\frac{1}{2\\pi}\\Big(r(0)
              + 2 \\sum_{k=1}^{K} r(k) \\cos(k \\lambda)\\Big),

    evaluated in one FFT over a dense frequency grid and interpolated
    onto the requested frequencies.  With the default ``K = 2^17``
    terms the truncation bias is negligible for every Fourier
    frequency of series up to ~10^5 samples (the lowest usable
    frequency of an n-sample series is ``2 pi / n >> pi / K``).
    """
    check_in_range(hurst, "hurst", 0.0, 1.0, inclusive_low=False,
                   inclusive_high=False)
    acvf_terms = check_positive_int(acvf_terms, "acvf_terms")
    lams = np.atleast_1d(np.asarray(frequencies, dtype=float))
    r = FGNCorrelation(hurst).acvf(acvf_terms)
    # One real FFT gives r0 + 2 sum r_k cos(k lam) on the grid
    # lam_j = 2 pi j / (2K): pack r into a length-2K symmetric buffer.
    m = 2 * acvf_terms
    buf = np.zeros(m)
    buf[0] = r[0]
    buf[1:acvf_terms] = r[1:]
    buf[acvf_terms + 1:] = r[1:][::-1]
    grid_density = np.fft.rfft(buf).real
    grid = np.linspace(0.0, np.pi, grid_density.size)
    density = np.interp(lams, grid, grid_density)
    return np.maximum(density, 1e-12) / (2.0 * np.pi)


@dataclass(frozen=True)
class WhittleEstimate:
    """Result of Whittle estimation against an FGN spectral model.

    Attributes
    ----------
    hurst:
        The minimising Hurst parameter.
    objective:
        The minimised Whittle objective value.
    frequencies, periodogram:
        The Fourier frequencies and periodogram ordinates used.
    """

    hurst: float
    objective: float
    frequencies: np.ndarray
    periodogram: np.ndarray


def whittle_estimate(
    values: Sequence[float],
    *,
    frequency_fraction: float = 0.5,
    bounds: tuple = (0.05, 0.99),
) -> WhittleEstimate:
    """Estimate the Hurst parameter by Whittle's method (FGN model).

    Parameters
    ----------
    values:
        The observed series.
    frequency_fraction:
        Fraction of the positive Fourier frequencies used (default all
        of the lower half; reduce to focus on the LRD regime when the
        series has strong non-FGN short-range structure).
    bounds:
        Search interval for H; the default covers antipersistent
        through strongly persistent series.
    """
    arr = check_min_length(values, "values", MIN_LENGTH)
    fraction = check_in_range(
        frequency_fraction, "frequency_fraction", 0.0, 1.0,
        inclusive_low=False,
    )
    n = arr.size
    centered = arr - arr.mean()
    spectrum = np.fft.rfft(centered)
    power = (np.abs(spectrum[1:]) ** 2) / (2.0 * np.pi * n)
    freqs = 2.0 * np.pi * np.arange(1, power.size + 1) / n
    keep = max(8, int(power.size * fraction))
    power = power[:keep]
    freqs = freqs[:keep]

    # Normalise out the (unknown) variance scale: the profile Whittle
    # objective is log(mean(I/f)) + mean(log f), invariant to scaling.
    def objective(hurst: float) -> float:
        density = fgn_spectral_density(hurst, freqs)
        ratio = power / density
        return float(np.log(np.mean(ratio)) + np.mean(np.log(density)))

    result = minimize_scalar(
        objective, bounds=bounds, method="bounded",
        options={"xatol": 1e-4},
    )
    if not result.success:  # pragma: no cover - bounded rarely fails
        raise EstimationError(
            f"Whittle optimisation failed: {result.message}"
        )
    return WhittleEstimate(
        hurst=float(result.x),
        objective=float(result.fun),
        frequencies=freqs,
        periodogram=power,
    )
