"""Sample autocorrelation and autocovariance estimation.

The estimators use the biased (divide by ``n``) convention standard in
time-series analysis, computed via FFT so that estimating 500 lags of a
238k-sample trace is fast.

A caveat that matters for this paper: for strongly long-range-dependent
series, subtracting the *sample* mean biases the sample ACF downward by
roughly ``var(sample mean) = O(n^{2H-2})``, which is material at short
series lengths.  When the true mean is known (e.g. synthetic zero-mean
background processes), pass ``mean`` explicitly to avoid that bias.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import check_min_length, check_nonnegative_int
from ..exceptions import EstimationError, ValidationError

__all__ = ["sample_acvf", "sample_acf"]


def sample_acvf(
    values: Sequence[float],
    max_lag: int,
    *,
    mean: Optional[float] = None,
) -> np.ndarray:
    """Return the sample autocovariance at lags ``0 .. max_lag``.

    Parameters
    ----------
    values:
        The observed series.
    max_lag:
        Largest lag to estimate; must be smaller than the series length.
    mean:
        Known process mean.  ``None`` (default) subtracts the sample
        mean.
    """
    arr = check_min_length(values, "values", 2)
    max_lag = check_nonnegative_int(max_lag, "max_lag")
    n = arr.size
    if max_lag >= n:
        raise ValidationError(
            f"max_lag={max_lag} must be smaller than the series length {n}"
        )
    centered = arr - (arr.mean() if mean is None else float(mean))
    # FFT-based full autocovariance: O(n log n).
    size = 1
    while size < 2 * n:
        size *= 2
    spectrum = np.fft.rfft(centered, size)
    acov = np.fft.irfft(spectrum * np.conj(spectrum), size)[: max_lag + 1]
    return acov / n


def sample_acf(
    values: Sequence[float],
    max_lag: int,
    *,
    mean: Optional[float] = None,
) -> np.ndarray:
    """Return the sample autocorrelation at lags ``0 .. max_lag``.

    Normalised so that ``acf[0] = 1``.  Raises
    :class:`~repro.exceptions.EstimationError` for a constant series
    (zero variance).
    """
    acov = sample_acvf(values, max_lag, mean=mean)
    if acov[0] <= 0:
        raise EstimationError(
            "series has zero sample variance; ACF is undefined"
        )
    return acov / acov[0]
