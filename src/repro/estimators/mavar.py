"""Modified Allan Variance (MAVAR) Hurst estimation.

Bregni & Primerano showed that the Modified Allan Variance — a
standard tool of frequency metrology — estimates the Hurst parameter
of LRD traffic with substantially lower bias and variance than the
paper's two graphical estimators (variance-time, R/S).  Treating the
frame/byte-count series ``y_k`` as "fractional frequency" samples with
phase data ``x_k = y_1 + ... + y_k``, the MAVAR at observation
interval ``tau = n`` (in sample units) is

.. math::

    \\mathrm{Mod}\\,\\sigma^2_y(n) = \\frac{1}{2 n^4 (N - 3n + 2)}
        \\sum_{j} \\Big( \\sum_{i=j}^{j+n-1}
        (x_{i+2n} - 2 x_{i+n} + x_i) \\Big)^2 ,

i.e. the half mean square of the *n-averaged* second phase difference,
normalized by ``n^2``.  For an LRD process with spectral exponent
``alpha = 1 - 2H`` the MAVAR follows the power law
``Mod sigma^2(n) ~ n^{mu}`` with ``mu = 2H - 2``, so the log-log slope
``mu`` estimates ``H = (mu + 2) / 2``.

Two estimation modes are provided:

- ``calibration="fgn"`` (default): the observed octave profile is
  matched against the *exact* finite-``n`` expected MAVAR of
  fractional Gaussian noise (a quadratic form in the FGN
  autocovariance, computed per octave from the averaging kernel's
  autocorrelation), with the scale profiled out.  This removes the
  small-``n`` curvature bias of the asymptotic power law, which is
  material at the 2^14-sample horizons of the Tier-1 harness.
- ``calibration="asymptotic"``: the classic Bregni estimator — a
  weighted least-squares line through ``(log n, log Mod sigma^2)``
  and ``H = (slope + 2) / 2``.

Both modes weight octave ``n`` by ``N / n``, the number of independent
``3n``-sample triplets the statistic averages over — the
inverse-variance weighting that makes the large, noisy observation
intervals count less.

Both modes are exactly invariant under affine rescaling ``a x + b`` of
the input: the second phase difference annihilates the additive drift
``b`` contributes to the phase, and the multiplicative ``a^2`` scale
moves the log-MAVAR intercept, never the slope (nor the profiled
matching objective).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from .._validation import check_min_length, check_positive_int
from ..exceptions import EstimationError
from ..processes.correlation import FGNCorrelation
from .regression import LineFit, fit_weighted_loglog_line

__all__ = [
    "MIN_LENGTH",
    "MavarEstimate",
    "modified_allan_variance",
    "mavar_estimate",
    "fgn_expected_mavar",
]

#: Minimum series length accepted by :func:`mavar_estimate`: the
#: shortest series whose default octave grid ``{2, 4}`` still yields a
#: two-point log-log fit (``3 n <= N - 1`` and ``n <= N // 8``).
MIN_LENGTH = 32

#: Hurst search interval of the ``"fgn"`` calibration (open (0, 1)).
_DEFAULT_BOUNDS = (0.02, 0.995)


@dataclass(frozen=True)
class MavarEstimate:
    """Result of a Modified Allan Variance analysis.

    Attributes
    ----------
    hurst:
        Estimated Hurst parameter (mode set by ``calibration``).
    calibration:
        ``"fgn"`` (exact finite-n expected-curve matching) or
        ``"asymptotic"`` (pure log-log slope).
    fit:
        Weighted log-log line fit through the octave profile; its
        slope is the power-law exponent ``mu`` (diagnostic in ``fgn``
        mode, the estimate itself in ``asymptotic`` mode).
    taus:
        Octave-spaced observation intervals ``n`` (sample units).
    mavar_values:
        ``Mod sigma^2(n)`` per observation interval.
    objective:
        Minimized matching objective in ``fgn`` mode (weighted squared
        log-residual after profiling the scale); ``nan`` in
        ``asymptotic`` mode.
    """

    hurst: float
    calibration: str
    fit: LineFit
    taus: np.ndarray
    mavar_values: np.ndarray
    objective: float

    @property
    def log_taus(self) -> np.ndarray:
        """``log10 n`` coordinates of the MAVAR plot."""
        return np.log10(self.taus)

    @property
    def log_mavar_values(self) -> np.ndarray:
        """``log10 Mod sigma^2(n)`` coordinates of the MAVAR plot."""
        return np.log10(self.mavar_values)

    @property
    def asymptotic_hurst(self) -> float:
        """``(slope + 2) / 2`` read off the weighted log-log line."""
        return (self.fit.slope + 2.0) / 2.0


def modified_allan_variance(values: Sequence[float], tau: int) -> float:
    """Return ``Mod sigma^2(tau)`` of a series at one observation interval.

    ``tau`` is in sample units (``tau0 = 1``); the series must contain
    at least ``3 tau + 1`` samples so one averaged second difference
    exists.  For an i.i.d. series ``modified_allan_variance(y, 1)``
    equals the mean square successive half-difference, an unbiased
    estimate of the variance.
    """
    tau = check_positive_int(tau, "tau")
    arr = check_min_length(values, "values", 3 * tau + 1)
    return float(_mavar_profile(arr, (tau,))[0])


def _octave_taus(
    n_total: int, min_tau: int, max_tau: Optional[int]
) -> Tuple[int, ...]:
    """Octave-spaced observation intervals ``min_tau, 2 min_tau, ...``.

    The grid stops at ``max_tau`` (default ``n_total // 8``, keeping at
    least ``~8/3`` independent triplets per point) and never exceeds
    the hard feasibility bound ``3 n <= n_total - 1``.
    """
    if max_tau is None:
        max_tau = max(min_tau * 2, n_total // 8)
    else:
        max_tau = check_positive_int(max_tau, "max_tau")
    taus = []
    n = min_tau
    while 3 * n <= n_total - 1 and n <= max_tau:
        taus.append(n)
        n *= 2
    return tuple(taus)


def _mavar_profile(
    arr: np.ndarray, taus: Sequence[int]
) -> np.ndarray:
    """``Mod sigma^2(n)`` for each ``n`` in ``taus`` (vectorized)."""
    phase = np.concatenate(([0.0], np.cumsum(arr)))
    out = np.empty(len(taus))
    for k, n in enumerate(taus):
        # Second phase difference at stride n ...
        second = phase[2 * n :] - 2.0 * phase[n:-n] + phase[: -2 * n]
        # ... averaged over windows of n consecutive starting points
        # via a cumulative sum (O(N) per octave).
        csum = np.concatenate(([0.0], np.cumsum(second)))
        averaged = (csum[n:] - csum[:-n]) / n
        out[k] = 0.5 * float(np.mean(averaged * averaged)) / (n * n)
    return out


@lru_cache(maxsize=64)
def _kernel_autocorrelation(tau: int) -> np.ndarray:
    """Autocorrelation of the MAVAR averaging kernel at interval ``tau``.

    The averaged second difference is the convolution of the Allan
    kernel ``(-1, ..., -1, +1, ..., +1)`` (``tau`` each) with a
    length-``tau`` box average — a linear functional of ``3 tau - 1``
    consecutive samples.  Its autocorrelation ``a(l) = sum_t g_t
    g_{t+l}`` turns the expected MAVAR into a plain dot product with
    the process autocovariance, independent of the Hurst parameter.
    """
    kernel = np.convolve(
        np.concatenate((-np.ones(tau), np.ones(tau))),
        np.full(tau, 1.0 / tau),
    )
    size = 1
    while size < 2 * kernel.size:
        size *= 2
    spectrum = np.fft.rfft(kernel, size)
    autocorr = np.fft.irfft(
        spectrum * np.conj(spectrum), size
    )[: kernel.size]
    autocorr.flags.writeable = False
    return autocorr


def fgn_expected_mavar(
    hurst: float, taus: Sequence[int]
) -> np.ndarray:
    """Exact ``E[Mod sigma^2(n)]`` of unit-variance FGN at each ``n``.

    Evaluated as a quadratic form: the autocorrelation of the averaging
    kernel (cached per ``n``) dotted with the exact FGN autocovariance.
    This is the finite-``n`` curve the ``"fgn"`` calibration matches,
    exact where the asymptotic power law ``n^{2H-2}`` still bends.
    """
    taus = tuple(check_positive_int(int(n), "tau") for n in taus)
    if not taus:
        raise EstimationError("need at least one observation interval")
    acvf = FGNCorrelation(hurst).acvf(max(3 * n - 1 for n in taus))
    out = np.empty(len(taus))
    for k, n in enumerate(taus):
        a = _kernel_autocorrelation(n)
        quad = a[0] * acvf[0] + 2.0 * float(
            np.dot(a[1:], acvf[1 : a.size])
        )
        out[k] = 0.5 * quad / (n * n)
    return out


def mavar_estimate(
    values: Sequence[float],
    *,
    taus: Optional[Sequence[int]] = None,
    min_tau: int = 2,
    max_tau: Optional[int] = None,
    calibration: str = "fgn",
    bounds: Tuple[float, float] = _DEFAULT_BOUNDS,
) -> MavarEstimate:
    """Estimate the Hurst parameter by Modified Allan Variance.

    Parameters
    ----------
    values:
        The observed series (e.g. bytes per frame); at least
        :data:`MIN_LENGTH` samples.
    taus:
        Explicit observation intervals; by default octave-spaced from
        ``min_tau`` up to ``max_tau``.
    min_tau, max_tau:
        Octave-grid knobs when ``taus`` is not given.  ``min_tau``
        defaults to 2 (the ``n = 1`` point sits furthest from the
        asymptotic regime); ``max_tau`` defaults to an eighth of the
        series length, below which the statistic still averages a
        useful number of independent triplets.
    calibration:
        ``"fgn"`` (default) matches the octave profile against the
        exact finite-``n`` FGN expectation with the scale profiled
        out; ``"asymptotic"`` reads ``H = (slope + 2) / 2`` off the
        weighted log-log line.
    bounds:
        Hurst search interval for the ``"fgn"`` calibration.

    Raises
    ------
    ValidationError
        If the series is shorter than :data:`MIN_LENGTH` (the error
        names the argument and the offending length).
    EstimationError
        If fewer than two usable observation intervals remain or the
        MAVAR profile is degenerate (zero variance).
    """
    arr = check_min_length(values, "values", MIN_LENGTH)
    if calibration not in ("fgn", "asymptotic"):
        raise EstimationError(
            f"calibration must be 'fgn' or 'asymptotic', "
            f"got {calibration!r}"
        )
    if taus is None:
        min_tau = check_positive_int(min_tau, "min_tau")
        taus = _octave_taus(arr.size, min_tau, max_tau)
    else:
        taus = tuple(
            check_positive_int(int(n), "tau")
            for n in taus
            if 3 * int(n) <= arr.size - 1
        )
    if len(taus) < 2:
        raise EstimationError(
            "need at least two usable observation intervals for MAVAR"
        )
    mavar_values = _mavar_profile(arr, taus)
    positive = mavar_values > 0
    if positive.sum() < 2:
        raise EstimationError(
            "MAVAR profile vanished; series degenerate"
        )
    taus_arr = np.asarray(taus, dtype=float)[positive]
    vals_arr = mavar_values[positive]
    # Inverse-variance octave weights: ~ number of independent
    # 3n-sample triplets each Mod sigma^2(n) averages over.
    weights = arr.size / taus_arr
    fit, _, _ = fit_weighted_loglog_line(taus_arr, vals_arr, weights)

    if calibration == "asymptotic":
        hurst = (fit.slope + 2.0) / 2.0
        objective = float("nan")
    else:
        log_obs = np.log10(vals_arr)
        norm_w = weights / weights.sum()
        int_taus = tuple(int(n) for n in taus_arr)

        def matching_objective(h: float) -> float:
            expected = fgn_expected_mavar(h, int_taus)
            resid = log_obs - np.log10(expected)
            resid = resid - float((norm_w * resid).sum())
            return float((norm_w * resid * resid).sum())

        result = minimize_scalar(
            matching_objective,
            bounds=bounds,
            method="bounded",
            options={"xatol": 1e-5},
        )
        if not result.success:  # pragma: no cover - bounded rarely fails
            raise EstimationError(
                f"MAVAR calibration failed: {result.message}"
            )
        hurst = float(result.x)
        objective = float(result.fun)

    return MavarEstimate(
        hurst=hurst,
        calibration=calibration,
        fit=fit,
        taus=np.asarray(taus, dtype=float),
        mavar_values=mavar_values,
        objective=objective,
    )
