"""Moving-block bootstrap confidence intervals for Hurst estimators.

The graphical Hurst estimators report a point value with no error bar;
the paper handles the resulting uncertainty by computing two estimates
and rounding.  This module adds a moving-block bootstrap: resample
contiguous blocks of the series (with replacement), re-estimate H on
each pseudo-series, and read percentile intervals off the bootstrap
distribution.

**Caveat, prominently:** block bootstraps are only asymptotically
valid when the block length grows past the dependence scale, and LRD
series have *no* finite dependence scale — intervals are therefore
systematically too narrow (they miss the low-frequency variability
that blocks cannot reproduce).  They remain useful as *lower bounds*
on the uncertainty and for comparing estimators on equal footing,
which is how the library's documentation uses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from .._validation import check_in_range, check_min_length, check_positive_int
from ..exceptions import EstimationError
from ..stats.random import RandomState, make_rng

__all__ = ["BootstrapResult", "block_bootstrap_hurst"]

HurstEstimator = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class BootstrapResult:
    """Bootstrap distribution of a Hurst estimate.

    Attributes
    ----------
    point:
        The estimate on the original series.
    replicates:
        Bootstrap re-estimates (length = number of resamples).
    """

    point: float
    replicates: np.ndarray

    @property
    def std_error(self) -> float:
        """Bootstrap standard error (lower bound under LRD; see module
        docstring)."""
        return float(self.replicates.std(ddof=1))

    def interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Percentile confidence interval at the given level."""
        level = check_in_range(
            level, "level", 0.0, 1.0, inclusive_low=False,
            inclusive_high=False,
        )
        alpha = (1.0 - level) / 2.0
        low = float(np.quantile(self.replicates, alpha))
        high = float(np.quantile(self.replicates, 1.0 - alpha))
        return low, high


def block_bootstrap_hurst(
    series: Sequence[float],
    estimator: HurstEstimator,
    *,
    block_length: int = 4096,
    resamples: int = 50,
    random_state: RandomState = None,
) -> BootstrapResult:
    """Moving-block bootstrap of a Hurst estimator.

    Parameters
    ----------
    series:
        The observed series.
    estimator:
        Callable mapping a series to a Hurst estimate, e.g.
        ``lambda x: variance_time_estimate(x).hurst``.
    block_length:
        Block size; should be much longer than the ACF knee (thousands
        of frames for the paper's material).
    resamples:
        Number of bootstrap pseudo-series.
    random_state:
        Seed or generator.
    """
    arr = check_min_length(series, "series", 64)
    block_length = check_positive_int(block_length, "block_length")
    resamples = check_positive_int(resamples, "resamples")
    if block_length >= arr.size:
        raise EstimationError(
            f"block_length {block_length} must be shorter than the "
            f"series ({arr.size})"
        )
    rng = make_rng(random_state)
    n = arr.size
    blocks_needed = int(np.ceil(n / block_length))
    max_start = n - block_length

    point = float(estimator(arr))
    replicates = np.empty(resamples)
    for i in range(resamples):
        starts = rng.integers(0, max_start + 1, size=blocks_needed)
        pieces = [arr[s:s + block_length] for s in starts]
        pseudo = np.concatenate(pieces)[:n]
        replicates[i] = float(estimator(pseudo))
    return BootstrapResult(point=point, replicates=replicates)
