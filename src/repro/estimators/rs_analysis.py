"""R/S (rescaled adjusted range) analysis of the Hurst effect (Fig. 4).

For a block of ``n`` observations with sample mean ``Xbar`` and sample
standard deviation ``S``, the rescaled adjusted range is

.. math::

    R/S = \\frac{\\max(0, W_1, ..., W_n) - \\min(0, W_1, ..., W_n)}{S},
    \\qquad W_k = \\sum_{i=1}^{k} X_i - k\\,\\bar X

(paper eq. 8).  For self-similar processes ``E[R/S] ~ c n^H`` (eq. 9),
so the slope of the "pox diagram" of ``log(R/S)`` against ``log n``
estimates ``H``.  Following the paper's methodology, the series is
divided into ``K`` non-overlapping starting points, and the statistic
is computed for each (starting point, block length) pair that fits.

The paper reports a slope of ``0.9287`` and adopts ``H ~= 0.92`` from
this method for the "Last Action Hero" trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import check_min_length, check_positive_int
from ..exceptions import EstimationError
from .regression import LineFit, fit_loglog_line

__all__ = ["MIN_LENGTH", "RsEstimate", "rs_statistic", "rs_estimate"]

#: Minimum series length: the shortest series whose *default* block
#: grid still yields two pox points, so short input consistently fails
#: the up-front :func:`~repro._validation.check_min_length` (a
#: ``ValidationError`` naming the argument and the length) instead of
#: a data-dependent ``EstimationError`` deeper in.
MIN_LENGTH = 16


@dataclass(frozen=True)
class RsEstimate:
    """Result of an R/S pox-diagram analysis.

    Attributes
    ----------
    hurst:
        Estimated Hurst parameter (slope of the log-log fit).
    fit:
        The underlying log-log line fit.
    block_lengths:
        Block length ``n`` of each pox point.
    rs_values:
        R/S statistic of each pox point.
    """

    hurst: float
    fit: LineFit
    block_lengths: np.ndarray
    rs_values: np.ndarray

    @property
    def log_block_lengths(self) -> np.ndarray:
        """``log10 n`` coordinates of the pox diagram."""
        return np.log10(self.block_lengths)

    @property
    def log_rs_values(self) -> np.ndarray:
        """``log10 R/S`` coordinates of the pox diagram."""
        return np.log10(self.rs_values)


def rs_statistic(values: Sequence[float]) -> float:
    """Return the R/S statistic of a single block (paper eq. 8)."""
    arr = check_min_length(values, "values", 2)
    deviations = arr - arr.mean()
    w = np.cumsum(deviations)
    spread = max(0.0, float(w.max())) - min(0.0, float(w.min()))
    s = float(arr.std(ddof=0))
    if s == 0:
        raise EstimationError("block has zero variance; R/S is undefined")
    return spread / s


def rs_estimate(
    values: Sequence[float],
    *,
    num_starting_points: int = 10,
    block_lengths: Optional[Sequence[int]] = None,
    min_block: int = 10,
    points_per_decade: int = 6,
) -> RsEstimate:
    """Estimate the Hurst parameter from an R/S pox diagram.

    Parameters
    ----------
    values:
        The observed series.
    num_starting_points:
        Number ``K`` of equally spaced block starting points
        ``t_1 = 1, t_2 = N/K + 1, ...`` (paper §3.2).
    block_lengths:
        Explicit block lengths ``n``; by default log-spaced between
        ``min_block`` and the series length.
    min_block, points_per_decade:
        Grid construction knobs when ``block_lengths`` is not given.
    """
    arr = check_min_length(values, "values", MIN_LENGTH)
    k = check_positive_int(num_starting_points, "num_starting_points")
    n_total = arr.size
    if block_lengths is None:
        min_block = check_positive_int(min_block, "min_block")
        count = max(
            2,
            int(
                np.ceil(
                    (np.log10(n_total) - np.log10(min_block))
                    * points_per_decade
                )
            ),
        )
        grid = np.logspace(np.log10(min_block), np.log10(n_total), count)
        block_lengths = sorted({int(round(b)) for b in grid})
    starts = [int(i * n_total / k) for i in range(k)]

    lengths = []
    statistics = []
    for n in block_lengths:
        if n < 2:
            continue
        for t in starts:
            if t + n > n_total:
                continue
            block = arr[t : t + n]
            if block.std(ddof=0) == 0:
                continue
            lengths.append(n)
            statistics.append(rs_statistic(block))
    if len(lengths) < 2:
        raise EstimationError(
            "not enough (starting point, block length) pairs for R/S"
        )
    lengths_arr = np.asarray(lengths, dtype=float)
    stats_arr = np.asarray(statistics, dtype=float)
    positive = stats_arr > 0
    fit, _, _ = fit_loglog_line(lengths_arr[positive], stats_arr[positive])
    return RsEstimate(
        hurst=float(fit.slope),
        fit=fit,
        block_lengths=lengths_arr,
        rs_values=stats_arr,
    )
