"""Variance-time estimation of the Hurst parameter (Fig. 3).

For a self-similar process the variance of the m-aggregated series
``X^(m)`` decays like ``m^{-beta}`` with ``beta = 2 - 2H``.  The
variance-time plot graphs ``log10 var(X^(m))`` against ``log10 m``; a
least-squares line through the points (ignoring the smallest ``m``, as
the paper does) has slope ``-beta``, yielding ``H = 1 - beta/2``.

The paper reports a slope of ``-0.2234`` and ``H ~= 0.89`` for the
"Last Action Hero" trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import check_min_length, check_positive_int
from ..exceptions import EstimationError
from ..stats.aggregate import aggregate_series, aggregation_levels
from .regression import LineFit, fit_loglog_line

__all__ = ["MIN_LENGTH", "VarianceTimeEstimate", "variance_time_estimate"]

#: Minimum series length: the shortest series whose *default* level
#: grid still yields a two-level fit, so short input consistently
#: fails the up-front :func:`~repro._validation.check_min_length`
#: (a ``ValidationError`` naming the argument and the length) instead
#: of a data-dependent ``EstimationError`` deeper in.
MIN_LENGTH = 32


@dataclass(frozen=True)
class VarianceTimeEstimate:
    """Result of a variance-time analysis.

    Attributes
    ----------
    hurst:
        Estimated Hurst parameter ``1 - beta/2``.
    beta:
        Estimated decay exponent (absolute slope of the fitted line).
    fit:
        The underlying log-log line fit (slope is ``-beta``).
    levels:
        Aggregation levels ``m`` used in the fit.
    variances:
        Sample variances of each aggregated series.
    """

    hurst: float
    beta: float
    fit: LineFit
    levels: np.ndarray
    variances: np.ndarray

    @property
    def log_levels(self) -> np.ndarray:
        """``log10 m`` coordinates of the plot."""
        return np.log10(self.levels)

    @property
    def log_variances(self) -> np.ndarray:
        """``log10 var(X^(m))`` coordinates of the plot."""
        return np.log10(self.variances)


def variance_time_estimate(
    values: Sequence[float],
    *,
    levels: Optional[Sequence[int]] = None,
    min_m: int = 10,
    min_blocks: int = 10,
    points_per_decade: int = 10,
) -> VarianceTimeEstimate:
    """Estimate the Hurst parameter from a variance-time plot.

    Parameters
    ----------
    values:
        The observed series (e.g. bytes per frame).
    levels:
        Explicit aggregation levels ``m``.  By default, log-spaced
        levels between ``min_m`` and the largest level that leaves
        ``min_blocks`` blocks; the small-``m`` region is excluded by
        default (``min_m = 10``) because the asymptotic slope only
        emerges at large ``m``, exactly as the paper's Fig. 3 ignores
        small values of ``m``.
    min_m, min_blocks, points_per_decade:
        Level-grid construction knobs when ``levels`` is not given.

    Raises
    ------
    EstimationError
        If fewer than two usable aggregation levels remain, or an
        aggregated series has zero variance.
    """
    arr = check_min_length(values, "values", MIN_LENGTH)
    if levels is None:
        levels = aggregation_levels(
            arr.size,
            min_m=min(min_m, max(1, arr.size // (2 * min_blocks))),
            min_blocks=min_blocks,
            points_per_decade=points_per_decade,
        )
    else:
        levels = [check_positive_int(int(m), "level") for m in levels]
    usable = [m for m in levels if arr.size // m >= 2]
    if len(usable) < 2:
        raise EstimationError(
            "need at least two aggregation levels with two or more blocks"
        )
    variances = np.array(
        [aggregate_series(arr, m).var(ddof=0) for m in usable]
    )
    if np.any(variances <= 0):
        raise EstimationError(
            "an aggregated series has zero variance; cannot take logs"
        )
    fit, _, _ = fit_loglog_line(np.asarray(usable, dtype=float), variances)
    beta = abs(fit.slope)
    return VarianceTimeEstimate(
        hurst=1.0 - beta / 2.0,
        beta=beta,
        fit=fit,
        levels=np.asarray(usable, dtype=float),
        variances=variances,
    )
