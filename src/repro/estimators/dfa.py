"""Detrended fluctuation analysis (DFA) Hurst estimation (extension).

DFA integrates the centered series, splits the profile into boxes of
size ``s``, removes a least-squares linear trend per box, and measures
the root-mean-square fluctuation ``F(s)``.  For a self-similar process
``F(s) ~ s^H``, so the slope of ``log F`` against ``log s`` estimates
``H``.  DFA is robust to polynomial trends, making it a useful sanity
check alongside the paper's variance-time and R/S estimators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import check_min_length, check_positive_int
from ..exceptions import EstimationError
from .regression import LineFit, fit_loglog_line

__all__ = ["MIN_LENGTH", "DfaEstimate", "dfa_estimate"]

#: Minimum series length: the shortest series whose default box grid
#: (``min_box = 8`` up to a quarter of the length) still yields a
#: two-point fit; shorter input fails the up-front
#: :func:`~repro._validation.check_min_length` uniformly.
MIN_LENGTH = 64


@dataclass(frozen=True)
class DfaEstimate:
    """Result of a detrended fluctuation analysis.

    Attributes
    ----------
    hurst:
        Estimated Hurst parameter (slope of the log-log fit).
    fit:
        Underlying log-log line fit.
    box_sizes:
        Box sizes ``s`` used.
    fluctuations:
        RMS fluctuation ``F(s)`` per box size.
    """

    hurst: float
    fit: LineFit
    box_sizes: np.ndarray
    fluctuations: np.ndarray


def _box_fluctuation(profile: np.ndarray, s: int) -> float:
    """RMS fluctuation of the linear-detrended profile in boxes of size s."""
    n_boxes = profile.size // s
    trimmed = profile[: n_boxes * s].reshape(n_boxes, s)
    t = np.arange(s, dtype=float)
    t_mean = t.mean()
    t_center = t - t_mean
    denom = float(np.sum(t_center**2))
    row_means = trimmed.mean(axis=1, keepdims=True)
    slopes = (trimmed @ t_center)[:, None] / denom
    residuals = trimmed - row_means - slopes * t_center
    return float(np.sqrt(np.mean(residuals**2)))


def dfa_estimate(
    values: Sequence[float],
    *,
    box_sizes: Optional[Sequence[int]] = None,
    min_box: int = 8,
    points_per_decade: int = 8,
) -> DfaEstimate:
    """Estimate the Hurst parameter by detrended fluctuation analysis.

    Parameters
    ----------
    values:
        The observed series.
    box_sizes:
        Explicit box sizes; by default log-spaced from ``min_box`` to a
        quarter of the series length.
    min_box, points_per_decade:
        Grid knobs when ``box_sizes`` is not given.
    """
    arr = check_min_length(values, "values", MIN_LENGTH)
    profile = np.cumsum(arr - arr.mean())
    if box_sizes is None:
        min_box = check_positive_int(min_box, "min_box")
        max_box = max(min_box + 1, arr.size // 4)
        count = max(
            2,
            int(
                np.ceil(
                    (np.log10(max_box) - np.log10(min_box))
                    * points_per_decade
                )
            ),
        )
        grid = np.logspace(np.log10(min_box), np.log10(max_box), count)
        box_sizes = sorted({int(round(s)) for s in grid})
    sizes = [
        check_positive_int(int(s), "box size")
        for s in box_sizes
        if 4 <= s <= arr.size // 2
    ]
    if len(sizes) < 2:
        raise EstimationError("need at least two usable box sizes for DFA")
    fluctuations = np.array([_box_fluctuation(profile, s) for s in sizes])
    positive = fluctuations > 0
    if positive.sum() < 2:
        raise EstimationError("DFA fluctuations vanished; series degenerate")
    fit, _, _ = fit_loglog_line(
        np.asarray(sizes, dtype=float)[positive], fluctuations[positive]
    )
    return DfaEstimate(
        hurst=float(fit.slope),
        fit=fit,
        box_sizes=np.asarray(sizes, dtype=float),
        fluctuations=fluctuations,
    )
