"""Least-squares line fitting shared by the Hurst estimators.

All of the graphical Hurst estimators (variance-time, R/S, periodogram,
DFA) reduce to fitting a line in a log-log plane and reading the Hurst
parameter off the slope.  :class:`LineFit` carries the slope, the
intercept, and the coefficient of determination so benches can report
fit quality the way the paper annotates its figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .._validation import check_1d_array
from ..exceptions import EstimationError, ValidationError

__all__ = ["LineFit", "fit_line", "fit_loglog_line"]


@dataclass(frozen=True)
class LineFit:
    """Result of an ordinary least-squares line fit ``y = slope*x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: Sequence[float]) -> np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def fit_line(x: Sequence[float], y: Sequence[float]) -> LineFit:
    """Fit ``y = slope * x + intercept`` by ordinary least squares."""
    xa = check_1d_array(x, "x")
    ya = check_1d_array(y, "y")
    if xa.size != ya.size:
        raise ValidationError(
            f"x and y must have equal length, got {xa.size} and {ya.size}"
        )
    if xa.size < 2:
        raise EstimationError("need at least two points to fit a line")
    if np.ptp(xa) == 0:
        raise EstimationError("x values are all equal; slope is undefined")
    slope, intercept = np.polyfit(xa, ya, 1)
    residuals = ya - (slope * xa + intercept)
    total = float(np.sum((ya - ya.mean()) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - float(
        np.sum(residuals**2)
    ) / total
    return LineFit(
        slope=float(slope), intercept=float(intercept), r_squared=r_squared
    )


def fit_loglog_line(
    x: Sequence[float], y: Sequence[float]
) -> Tuple[LineFit, np.ndarray, np.ndarray]:
    """Fit a line through ``(log10 x, log10 y)``.

    Returns the fit together with the log-transformed coordinates so
    callers can reproduce the paper's plots.  All inputs must be
    strictly positive.
    """
    xa = check_1d_array(x, "x")
    ya = check_1d_array(y, "y")
    if np.any(xa <= 0) or np.any(ya <= 0):
        raise ValidationError(
            "log-log fitting requires strictly positive x and y"
        )
    log_x = np.log10(xa)
    log_y = np.log10(ya)
    return fit_line(log_x, log_y), log_x, log_y
