"""Least-squares line fitting shared by the Hurst estimators.

All of the graphical Hurst estimators (variance-time, R/S, periodogram,
DFA) reduce to fitting a line in a log-log plane and reading the Hurst
parameter off the slope.  :class:`LineFit` carries the slope, the
intercept, and the coefficient of determination so benches can report
fit quality the way the paper annotates its figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .._validation import check_1d_array
from ..exceptions import EstimationError, ValidationError

__all__ = [
    "LineFit",
    "fit_line",
    "fit_loglog_line",
    "fit_weighted_line",
    "fit_weighted_loglog_line",
]


@dataclass(frozen=True)
class LineFit:
    """Result of an ordinary least-squares line fit ``y = slope*x + intercept``.

    ``stderr`` is the nominal standard error of the slope under the
    i.i.d.-residual assumption (``nan`` for two-point fits).  The
    log-log points of the graphical Hurst estimators are *correlated*,
    so confidence intervals built from it are known to under-cover —
    the bake-off harness measures that coverage directly.
    """

    slope: float
    intercept: float
    r_squared: float
    stderr: float = float("nan")

    def predict(self, x: Sequence[float]) -> np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def fit_line(x: Sequence[float], y: Sequence[float]) -> LineFit:
    """Fit ``y = slope * x + intercept`` by ordinary least squares."""
    xa = check_1d_array(x, "x")
    ya = check_1d_array(y, "y")
    if xa.size != ya.size:
        raise ValidationError(
            f"x and y must have equal length, got {xa.size} and {ya.size}"
        )
    if xa.size < 2:
        raise EstimationError("need at least two points to fit a line")
    if np.ptp(xa) == 0:
        raise EstimationError("x values are all equal; slope is undefined")
    slope, intercept = np.polyfit(xa, ya, 1)
    residuals = ya - (slope * xa + intercept)
    total = float(np.sum((ya - ya.mean()) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - float(
        np.sum(residuals**2)
    ) / total
    ssx = float(np.sum((xa - xa.mean()) ** 2))
    if xa.size > 2 and ssx > 0:
        stderr = float(
            np.sqrt(np.sum(residuals**2) / (xa.size - 2) / ssx)
        )
    else:
        stderr = float("nan")
    return LineFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r_squared,
        stderr=stderr,
    )


def fit_weighted_line(
    x: Sequence[float], y: Sequence[float], weights: Sequence[float]
) -> LineFit:
    """Fit ``y = slope * x + intercept`` by weighted least squares.

    ``weights`` are relative precisions (inverse variances up to a
    common factor); they must be strictly positive.  ``r_squared`` and
    ``stderr`` are computed in the weighted metric.
    """
    xa = check_1d_array(x, "x")
    ya = check_1d_array(y, "y")
    wa = check_1d_array(weights, "weights")
    if not (xa.size == ya.size == wa.size):
        raise ValidationError(
            f"x, y, and weights must have equal length, got "
            f"{xa.size}, {ya.size}, and {wa.size}"
        )
    if np.any(wa <= 0):
        raise ValidationError("weights must be strictly positive")
    if xa.size < 2:
        raise EstimationError("need at least two points to fit a line")
    if np.ptp(xa) == 0:
        raise EstimationError("x values are all equal; slope is undefined")
    w = wa / wa.sum()
    x_mean = float((w * xa).sum())
    y_mean = float((w * ya).sum())
    ssx = float((w * (xa - x_mean) ** 2).sum())
    slope = float((w * (xa - x_mean) * (ya - y_mean)).sum()) / ssx
    intercept = y_mean - slope * x_mean
    residuals = ya - (slope * xa + intercept)
    total = float((w * (ya - y_mean) ** 2).sum())
    wssr = float((w * residuals**2).sum())
    r_squared = 1.0 if total == 0 else 1.0 - wssr / total
    if xa.size > 2:
        stderr = float(np.sqrt(wssr / (xa.size - 2) / ssx))
    else:
        stderr = float("nan")
    return LineFit(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        stderr=stderr,
    )


def fit_weighted_loglog_line(
    x: Sequence[float], y: Sequence[float], weights: Sequence[float]
) -> Tuple[LineFit, np.ndarray, np.ndarray]:
    """Weighted fit of a line through ``(log10 x, log10 y)``.

    The log-log counterpart of :func:`fit_weighted_line`; all ``x``
    and ``y`` must be strictly positive.
    """
    xa = check_1d_array(x, "x")
    ya = check_1d_array(y, "y")
    if np.any(xa <= 0) or np.any(ya <= 0):
        raise ValidationError(
            "log-log fitting requires strictly positive x and y"
        )
    log_x = np.log10(xa)
    log_y = np.log10(ya)
    return fit_weighted_line(log_x, log_y, weights), log_x, log_y


def fit_loglog_line(
    x: Sequence[float], y: Sequence[float]
) -> Tuple[LineFit, np.ndarray, np.ndarray]:
    """Fit a line through ``(log10 x, log10 y)``.

    Returns the fit together with the log-transformed coordinates so
    callers can reproduce the paper's plots.  All inputs must be
    strictly positive.
    """
    xa = check_1d_array(x, "x")
    ya = check_1d_array(y, "y")
    if np.any(xa <= 0) or np.any(ya <= 0):
        raise ValidationError(
            "log-log fitting requires strictly positive x and y"
        )
    log_x = np.log10(xa)
    log_y = np.log10(ya)
    return fit_line(log_x, log_y), log_x, log_y
