"""Statistical estimators: autocorrelation, Hurst parameter, ACF fitting.

The paper's modeling pipeline (§3.2) rests on three estimation tasks:

1. estimating the Hurst parameter of an empirical trace — the paper
   uses variance-time plots (Fig. 3) and R/S pox diagrams (Fig. 4);
   we additionally provide periodogram, DFA, Whittle and Modified
   Allan Variance (MAVAR) estimators as extensions;
2. estimating the empirical autocorrelation function (Fig. 5); and
3. fitting the composite SRD+LRD structure of eq. 10-13 to it,
   including knee detection (Fig. 6).

The :mod:`~repro.estimators.bakeoff` module runs every registered
Hurst estimator on the *same* seeded known-H paths (paired design)
across the backend registry and reports per-estimator bias, variance,
RMSE and CI coverage — the harness behind the Tier-1 tolerance
retunings documented in ``DESIGN.md`` §5h.
"""

from .acf import sample_acf, sample_acvf
from .acf_fit import AcfFit, fit_composite_acf, detect_knee
from .bakeoff import (
    BakeoffCell,
    BakeoffResult,
    EstimatorSpec,
    HURST_ESTIMATORS,
    run_bakeoff,
)
from .bootstrap import BootstrapResult, block_bootstrap_hurst
from .dfa import DfaEstimate, dfa_estimate
from .farima_fit import FarimaFit, farima_acvf_numeric, fit_farima
from .mavar import (
    MavarEstimate,
    fgn_expected_mavar,
    mavar_estimate,
    modified_allan_variance,
)
from .periodogram import PeriodogramEstimate, periodogram_estimate
from .regression import (
    LineFit,
    fit_line,
    fit_loglog_line,
    fit_weighted_line,
    fit_weighted_loglog_line,
)
from .rs_analysis import RsEstimate, rs_estimate, rs_statistic
from .variance_time import VarianceTimeEstimate, variance_time_estimate
from .whittle import WhittleEstimate, fgn_spectral_density, whittle_estimate

__all__ = [
    "sample_acf",
    "sample_acvf",
    "AcfFit",
    "fit_composite_acf",
    "detect_knee",
    "LineFit",
    "fit_line",
    "fit_loglog_line",
    "fit_weighted_line",
    "fit_weighted_loglog_line",
    "VarianceTimeEstimate",
    "variance_time_estimate",
    "RsEstimate",
    "rs_estimate",
    "rs_statistic",
    "PeriodogramEstimate",
    "periodogram_estimate",
    "DfaEstimate",
    "dfa_estimate",
    "WhittleEstimate",
    "whittle_estimate",
    "fgn_spectral_density",
    "MavarEstimate",
    "mavar_estimate",
    "modified_allan_variance",
    "fgn_expected_mavar",
    "EstimatorSpec",
    "HURST_ESTIMATORS",
    "BakeoffCell",
    "BakeoffResult",
    "run_bakeoff",
    "FarimaFit",
    "fit_farima",
    "farima_acvf_numeric",
    "BootstrapResult",
    "block_bootstrap_hurst",
]
