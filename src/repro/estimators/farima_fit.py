"""FARIMA(p, d, 0) fitting — the paper's implicit baseline.

Section 1 of the paper notes that a fractional ARIMA(p, d, q) model
*can* represent both LRD and SRD simultaneously, "but it may be
difficult to obtain accurate estimates of the p and q parameters
required for the generation of traces with arbitrary marginals" — that
difficulty is what motivates the unified approach.  To make the
comparison concrete, this module implements the natural FARIMA
baseline:

1. estimate the memory parameter ``d = H - 1/2`` (Whittle by default);
2. fractionally difference the (Gaussianized) series with the
   truncated ``(1 - B)^d`` filter;
3. fit the AR(p) short-range part to the differenced series by
   Yule-Walker (Durbin-Levinson on the sample autocovariance).

The fitted object exposes the implied autocovariance (via numerical
spectral inversion) so it can drive the same generators and queueing
experiments as the unified model, and the ablation bench compares the
two approaches' ACF fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import (
    check_in_range,
    check_min_length,
    check_nonnegative_int,
    check_positive_int,
)
from ..exceptions import EstimationError, ValidationError
from ..processes.farima import fractional_diff_weights
from ..processes.partial_corr import DurbinLevinson
from .acf import sample_acvf
from .whittle import whittle_estimate

__all__ = ["FarimaFit", "fit_farima", "farima_acvf_numeric"]


def farima_acvf_numeric(
    d: float,
    ar: Sequence[float],
    n: int,
    *,
    grid_size: int = 1 << 20,
) -> np.ndarray:
    """Autocovariance of FARIMA(p, d, 0), normalised to r(0) = 1.

    Computed by numerical inversion of the spectral density

    .. math::

        f(\\lambda) \\propto
            \\big|1 - \\sum_j \\phi_j e^{-ij\\lambda}\\big|^{-2}
            \\,\\big(2 \\sin(\\lambda/2)\\big)^{-2d}

    on a dense midpoint frequency grid (which sidesteps the integrable
    singularity at 0 for ``d > 0``).
    """
    check_in_range(d, "d", -0.5, 0.5, inclusive_low=False,
                   inclusive_high=False)
    n = check_positive_int(n, "n")
    grid_size = check_positive_int(grid_size, "grid_size")
    if n > grid_size // 4:
        raise ValidationError(
            f"n={n} too large for grid_size={grid_size}; increase the "
            "grid for accurate long-lag inversion"
        )
    ar_arr = np.asarray(ar, dtype=float)
    # Midpoint grid over (0, pi) sidesteps the lam=0 singularity.
    m = grid_size
    lam = (np.arange(m) + 0.5) * np.pi / m
    density = (2.0 * np.sin(lam / 2.0)) ** (-2.0 * d)
    if ar_arr.size:
        j = np.arange(1, ar_arr.size + 1)
        response = 1.0 - np.exp(-1j * np.outer(lam, j)) @ ar_arr.astype(
            complex
        )
        density = density / np.abs(response) ** 2
    # r(k) = (pi/m) sum_j f_j cos(k lam_j), evaluated for all k at once
    # via an FFT: sum_j f_j e^{+i k (j+1/2) pi / m}
    #           = e^{i k pi/(2m)} * (2m) * IFFT_{2m}(f)[k].
    transform = np.fft.ifft(density, 2 * m) * (2 * m)
    k = np.arange(n)
    phase = np.exp(1j * k * np.pi / (2 * m))
    acvf = (np.pi / m) * np.real(phase * transform[:n])
    return acvf / acvf[0]


@dataclass(frozen=True)
class FarimaFit:
    """A fitted FARIMA(p, d, 0) model.

    Attributes
    ----------
    d:
        Fractional differencing parameter (``H - 1/2``).
    ar:
        Fitted AR coefficients ``phi_1 .. phi_p``.
    innovation_variance:
        Yule-Walker innovation variance of the differenced series.
    hurst:
        The Hurst parameter used for ``d``.
    """

    d: float
    ar: np.ndarray
    innovation_variance: float
    hurst: float

    def acvf(self, n: int) -> np.ndarray:
        """Implied unit-variance autocovariance ``r(0) .. r(n-1)``."""
        return farima_acvf_numeric(self.d, self.ar, n)

    def __repr__(self) -> str:
        coeffs = ", ".join(f"{phi:.4f}" for phi in self.ar)
        return (
            f"FarimaFit(d={self.d:.4f}, ar=[{coeffs}], "
            f"hurst={self.hurst:.4f})"
        )


def fit_farima(
    series: Sequence[float],
    *,
    p: int = 1,
    d: Optional[float] = None,
    hurst: Optional[float] = None,
    diff_truncation: int = 1000,
) -> FarimaFit:
    """Fit a FARIMA(p, d, 0) model to a (roughly Gaussian) series.

    Parameters
    ----------
    series:
        The observed series.  For VBR video, pass the *Gaussianized*
        trace ``h^{-1}(Y)`` so the Gaussian FARIMA machinery applies —
        exactly the step whose awkwardness the paper criticises.
    p:
        AR order (0 for a pure FARIMA(0, d, 0)).
    d:
        Fix the memory parameter; ``None`` derives it from ``hurst``.
    hurst:
        Fix the Hurst parameter; ``None`` estimates it by Whittle's
        method.
    diff_truncation:
        Number of ``(1 - B)^d`` filter weights kept when fractionally
        differencing.

    Raises
    ------
    EstimationError
        If the implied ``d`` falls outside (0, 1/2).
    """
    arr = check_min_length(series, "series", 256)
    p = check_nonnegative_int(p, "p")
    check_positive_int(diff_truncation, "diff_truncation")

    if d is None:
        if hurst is None:
            hurst = whittle_estimate(arr).hurst
        d = hurst - 0.5
    else:
        hurst = d + 0.5
    if not 0.0 < d < 0.5:
        raise EstimationError(
            f"memory parameter d={d:.3f} outside (0, 0.5); the series "
            "does not look long-range dependent"
        )

    centered = arr - arr.mean()
    weights = fractional_diff_weights(
        d, min(diff_truncation, arr.size)
    )
    differenced = np.convolve(centered, weights)[: arr.size]
    # Drop the filter warm-up region.
    differenced = differenced[min(weights.size, arr.size // 4):]

    if p == 0:
        ar = np.empty(0)
        innovation_variance = float(differenced.var())
    else:
        acvf = sample_acvf(differenced, p)
        state = DurbinLevinson(acvf)
        for _ in range(p):
            state.advance()
        ar = state.phi
        innovation_variance = float(state.variance)
    return FarimaFit(
        d=float(d),
        ar=np.asarray(ar, dtype=float),
        innovation_variance=innovation_variance,
        hurst=float(hurst),
    )
