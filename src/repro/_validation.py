"""Internal argument-validation helpers.

These helpers centralize the range and shape checks used across the
package so that error messages are uniform and informative.  They are
deliberately small and free of numpy-version-specific behaviour.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .exceptions import ValidationError

Number = Union[int, float]

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_nonnegative_float",
    "check_in_range",
    "check_probability",
    "check_hurst",
    "check_1d_array",
    "check_min_length",
    "check_choice",
]


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` as ``int`` if it is a positive integer, else raise."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonnegative_int(value: int, name: str) -> int:
    """Return ``value`` as ``int`` if it is a non-negative integer, else raise."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_positive_float(value: Number, name: str) -> float:
    """Return ``value`` as ``float`` if it is strictly positive, else raise."""
    value = _as_float(value, name)
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_float(value: Number, name: str) -> float:
    """Return ``value`` as ``float`` if it is non-negative, else raise."""
    value = _as_float(value, name)
    if not value >= 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(
    value: Number,
    name: str,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Return ``value`` as ``float`` if it lies in the given interval."""
    value = _as_float(value, name)
    ok_low = value >= low if inclusive_low else value > low
    ok_high = value <= high if inclusive_high else value < high
    if not (ok_low and ok_high):
        lo_br = "[" if inclusive_low else "("
        hi_br = "]" if inclusive_high else ")"
        raise ValidationError(
            f"{name} must be in {lo_br}{low}, {high}{hi_br}, got {value}"
        )
    return value


def check_probability(value: Number, name: str) -> float:
    """Return ``value`` as ``float`` if it is a probability in [0, 1]."""
    return check_in_range(value, name, 0.0, 1.0)


def check_hurst(value: Number, name: str = "hurst") -> float:
    """Return a valid Hurst parameter in the open interval (0, 1)."""
    return check_in_range(
        value, name, 0.0, 1.0, inclusive_low=False, inclusive_high=False
    )


def check_1d_array(
    values: Sequence[Number],
    name: str,
    *,
    dtype: type = float,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``values`` to a finite 1-D :class:`numpy.ndarray`."""
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr


def check_min_length(
    values: Sequence[Number], name: str, min_length: int
) -> np.ndarray:
    """Coerce to a 1-D array and require at least ``min_length`` entries."""
    arr = check_1d_array(values, name)
    if arr.size < min_length:
        raise ValidationError(
            f"{name} must have at least {min_length} entries, got {arr.size}"
        )
    return arr


def check_choice(value: str, name: str, choices: Sequence[str]) -> str:
    """Return ``value`` if it is one of ``choices``, else raise.

    The error names the offending argument, lists the valid choices,
    and echoes the received value — the shared error shape for every
    string-enumerated argument in the package.
    """
    if value not in choices:
        listed = ", ".join(repr(choice) for choice in choices)
        raise ValidationError(
            f"{name} must be one of {listed}, got {value!r}"
        )
    return value


def _as_float(value: Number, name: str) -> float:
    if isinstance(value, bool) or not isinstance(
        value, (int, float, np.integer, np.floating)
    ):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    result = float(value)
    if not np.isfinite(result):
        raise ValidationError(f"{name} must be finite, got {value}")
    return result
