"""Command-line interface.

Four subcommands cover the day-to-day uses of the library on trace
files (``python -m repro <command> ...``):

- ``synthesize`` — generate a synthetic MPEG-1 trace file;
- ``analyze``    — trace summary, Table-1 parameters, Hurst estimates;
- ``fit``        — run the unified pipeline, print the fit report, and
  optionally regenerate a synthetic trace file from the fitted model;
- ``overflow``   — trace-driven multiplexer overflow probabilities.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .core.pipeline import fit_report
from .core.unified import UnifiedVBRModel
from .processes import registry
from .estimators.rs_analysis import rs_estimate
from .estimators.variance_time import variance_time_estimate
from .estimators.whittle import whittle_estimate
from .exceptions import ReproError
from .queueing.multiplexer import service_rate_for_utilization
from .queueing.overflow import steady_state_overflow_from_trace
from .video.io import load_trace, save_trace
from .video.synthetic import SyntheticCodecConfig, SyntheticMPEGCodec
from .video.table1 import trace_parameters
from .video.trace import VideoTrace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Self-similar VBR video modeling & simulation "
            "(Huang et al., SIGCOMM '95 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser(
        "synthesize", help="generate a synthetic MPEG-1 trace file"
    )
    synth.add_argument("output", help="destination trace file")
    synth.add_argument(
        "--frames", type=int, default=238_626,
        help="number of frames (default: the paper's 238,626)",
    )
    synth.add_argument(
        "--mode", choices=("intraframe", "ibp"), default="intraframe",
        help="intraframe-only (Figs. 1-8) or interframe I/B/P (§3.3)",
    )
    synth.add_argument("--seed", type=int, default=None)

    analyze = sub.add_parser(
        "analyze", help="summarize a trace and estimate its Hurst parameter"
    )
    analyze.add_argument("trace", help="trace file (see repro.video.io)")
    analyze.add_argument(
        "--frame-rate", type=float, default=30.0,
        help="frames per second of the recording",
    )

    fit = sub.add_parser(
        "fit", help="fit the unified VBR model to a trace"
    )
    fit.add_argument("trace", help="trace file")
    fit.add_argument("--frame-rate", type=float, default=30.0)
    fit.add_argument(
        "--max-lag", type=int, default=500,
        help="ACF lags used in the fit",
    )
    fit.add_argument(
        "--background",
        choices=("compensated", "hermite-inverse"),
        default="compensated",
        help="background calibration method",
    )
    fit.add_argument(
        "--generate", type=int, default=0, metavar="N",
        help="also generate an N-frame synthetic trace",
    )
    fit.add_argument(
        "--backend",
        choices=("auto",) + registry.names(),
        default="auto",
        help=(
            "generation backend for --generate (default: auto = "
            "Davies-Harte for unconditional paths)"
        ),
    )
    fit.add_argument(
        "--output", default=None,
        help="destination for the generated trace (with --generate)",
    )
    fit.add_argument("--seed", type=int, default=None)

    overflow = sub.add_parser(
        "overflow",
        help="trace-driven multiplexer overflow probabilities",
    )
    overflow.add_argument("trace", help="trace file")
    overflow.add_argument(
        "--utilization", type=float, nargs="+", default=[0.8, 0.6, 0.4],
    )
    overflow.add_argument(
        "--buffers", type=float, nargs="+",
        default=[25.0, 50.0, 100.0, 200.0],
        help="normalized buffer sizes",
    )
    overflow.add_argument("--frame-rate", type=float, default=30.0)
    return parser


def _cmd_synthesize(args: argparse.Namespace) -> int:
    if args.mode == "intraframe":
        config = SyntheticCodecConfig.intraframe_paper_like(
            num_frames=args.frames
        )
    else:
        config = SyntheticCodecConfig.paper_like(num_frames=args.frames)
    trace = SyntheticMPEGCodec(config).generate(random_state=args.seed)
    save_trace(trace, args.output)
    print(f"wrote {trace.num_frames} frames to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace, frame_rate=args.frame_rate)
    params = trace_parameters(trace, coder="(from file)")
    print("trace parameters:")
    for label, value in params.rows().items():
        print(f"  {label}: {value}")
    summary = trace.summary()
    print("\nframe-size statistics (bytes):")
    for key, value in summary.as_dict().items():
        print(f"  {key}: {value:.1f}" if isinstance(value, float)
              else f"  {key}: {value}")
    print(f"  mean rate: {trace.mean_rate_bps / 1e3:.0f} kbit/s")

    print("\nHurst estimates:")
    print(f"  variance-time: "
          f"{variance_time_estimate(trace.sizes).hurst:.3f}")
    print(f"  R/S:           {rs_estimate(trace.sizes).hurst:.3f}")
    print(f"  Whittle:       {whittle_estimate(trace.sizes).hurst:.3f}")
    if trace.gop is not None:
        print(f"\nGOP pattern: {trace.gop.pattern_string}")
        for frame_type, s in trace.type_summaries().items():
            print(f"  {frame_type}: n={s.count}, mean={s.mean:.0f}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace, frame_rate=args.frame_rate)
    model = UnifiedVBRModel(
        max_lag=args.max_lag, background_method=args.background
    ).fit(trace, random_state=args.seed)
    print(fit_report(model))
    if args.generate:
        if not args.output:
            print("error: --generate requires --output", file=sys.stderr)
            return 2
        synthetic = model.generate(
            args.generate, backend=args.backend, random_state=args.seed
        )
        save_trace(
            VideoTrace(
                sizes=synthetic,
                frame_rate=trace.frame_rate,
                name=f"{trace.name}-synthetic",
            ),
            args.output,
        )
        print(f"\nwrote {args.generate} synthetic frames to "
              f"{args.output}")
    return 0


def _cmd_overflow(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace, frame_rate=args.frame_rate)
    arrivals = trace.normalized_sizes()
    header = "buffer b".ljust(10) + "".join(
        f"util {u:g}".rjust(12) for u in args.utilization
    )
    print(header)
    columns = []
    for utilization in args.utilization:
        mu = service_rate_for_utilization(1.0, utilization)
        estimates = steady_state_overflow_from_trace(
            arrivals, mu, args.buffers
        )
        columns.append(estimates)
    for i, b in enumerate(args.buffers):
        row = f"{b:<10g}"
        for column in columns:
            log_p = column[i].log10_probability
            row += (
                f"{log_p:>12.2f}" if np.isfinite(log_p) else
                f"{'-inf':>12}"
            )
        print(row)
    print("(values are log10 P(Q > b); -inf = no overflow in the trace)")
    return 0


_COMMANDS = {
    "synthesize": _cmd_synthesize,
    "analyze": _cmd_analyze,
    "fit": _cmd_fit,
    "overflow": _cmd_overflow,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
