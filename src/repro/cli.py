"""Command-line interface.

Six subcommands cover the day-to-day uses of the library
(``python -m repro <command> ...``):

- ``synthesize`` — generate a synthetic MPEG-1 trace file;
- ``analyze``    — trace summary, Table-1 parameters, Hurst estimates;
- ``fit``        — run the unified pipeline, print the fit report, and
  optionally regenerate a synthetic trace file from the fitted model;
- ``overflow``   — trace-driven multiplexer overflow probabilities;
- ``simulate``   — fit, scan the twist grid for the variance valley
  (Fig. 14), and run the importance-sampling buffer sweep (Fig. 16);
- ``bakeoff``    — paired cross-estimator accuracy study on known-H
  synthetic paths (bias/std/RMSE/coverage per estimator).

``fit``, ``simulate`` and ``bakeoff`` accept ``--metrics-out PATH`` to
export the run's metric snapshot (coefficient-cache hit/miss counts,
per-leg wall times, ESS per twist point, per-estimator bake-off
timings, ...) as JSON lines.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .core.aggregate import ShardedAggregateModel
from .core.multiplex import AggregateVBRModel
from .core.pipeline import fit_report
from .core.unified import UnifiedVBRModel
from .observability import NULL_CONTEXT, RunContext, to_json_lines
from .processes import registry
from .processes.chunked import ChunkedGenerator
from .processes.coeff_table import coefficient_cache_info
from .processes.spectral_cache import spectral_cache_info
from .estimators.bakeoff import HURST_ESTIMATORS, run_bakeoff
from .estimators.mavar import mavar_estimate
from .estimators.rs_analysis import rs_estimate
from .estimators.variance_time import variance_time_estimate
from .estimators.whittle import whittle_estimate
from .exceptions import ReproError
from .queueing.capacity import (
    admissible_sources,
    bufferless_loss_gaussian,
    effective_bandwidth_vs_n,
)
from .queueing.multiplexer import service_rate_for_utilization
from .queueing.overflow import steady_state_overflow_from_trace
from .simulation import overflow_vs_buffer_curve, search_twisted_mean
from .stats.random import spawn_rngs
from .video.io import load_trace, save_trace
from .video.synthetic import SyntheticCodecConfig, SyntheticMPEGCodec
from .video.table1 import trace_parameters
from .video.trace import VideoTrace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Self-similar VBR video modeling & simulation "
            "(Huang et al., SIGCOMM '95 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser(
        "synthesize", help="generate a synthetic MPEG-1 trace file"
    )
    synth.add_argument("output", help="destination trace file")
    synth.add_argument(
        "--frames", type=int, default=238_626,
        help="number of frames (default: the paper's 238,626)",
    )
    synth.add_argument(
        "--mode", choices=("intraframe", "ibp"), default="intraframe",
        help="intraframe-only (Figs. 1-8) or interframe I/B/P (§3.3)",
    )
    synth.add_argument("--seed", type=int, default=None)

    analyze = sub.add_parser(
        "analyze", help="summarize a trace and estimate its Hurst parameter"
    )
    analyze.add_argument("trace", help="trace file (see repro.video.io)")
    analyze.add_argument(
        "--frame-rate", type=float, default=30.0,
        help="frames per second of the recording",
    )

    fit = sub.add_parser(
        "fit", help="fit the unified VBR model to a trace"
    )
    fit.add_argument("trace", help="trace file")
    fit.add_argument("--frame-rate", type=float, default=30.0)
    fit.add_argument(
        "--max-lag", type=int, default=500,
        help="ACF lags used in the fit",
    )
    fit.add_argument(
        "--background",
        choices=("compensated", "hermite-inverse"),
        default="compensated",
        help="background calibration method",
    )
    fit.add_argument(
        "--generate", type=int, default=0, metavar="N",
        help="also generate an N-frame synthetic trace",
    )
    fit.add_argument(
        "--backend",
        choices=("auto",) + registry.names(),
        default="auto",
        help=(
            "generation backend for --generate (default: auto = "
            "Davies-Harte for unconditional paths)"
        ),
    )
    fit.add_argument(
        "--chunk-frames", type=int, default=None, metavar="L",
        help=(
            "generate via the scene-chunked pipeline with L-frame "
            "chunks (chunking is part of the law: a chunked trace uses "
            "different random streams than a single-pass one)"
        ),
    )
    fit.add_argument(
        "--processes", type=int, default=None, metavar="P",
        help=(
            "chunk jobs in flight for --chunk-frames (default: "
            "REPRO_PROCESSES or 1; never changes output bits)"
        ),
    )
    fit.add_argument(
        "--output", default=None,
        help="destination for the generated trace (with --generate)",
    )
    fit.add_argument("--seed", type=int, default=None)
    fit.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metric snapshot as JSON lines",
    )

    simulate = sub.add_parser(
        "simulate",
        help=(
            "importance-sampling overflow study: fit, find the "
            "favorable twist, sweep buffer sizes"
        ),
    )
    simulate.add_argument("trace", help="trace file")
    simulate.add_argument("--frame-rate", type=float, default=30.0)
    simulate.add_argument(
        "--max-lag", type=int, default=500, help="ACF lags used in the fit"
    )
    simulate.add_argument(
        "--utilization", type=float, default=0.8,
        help="multiplexer utilization rho (service rate = 1/rho)",
    )
    simulate.add_argument(
        "--buffers", type=float, nargs="+", default=[5.0, 10.0, 20.0],
        help="normalized buffer sizes for the overflow sweep",
    )
    simulate.add_argument(
        "--twists", type=float, nargs="+",
        default=[0.0, 1.0, 2.0, 3.0, 4.0],
        help="twisted-mean candidates m* for the variance-valley scan",
    )
    simulate.add_argument(
        "--search-buffer", type=float, default=None,
        help=(
            "buffer size the twist scan runs at "
            "(default: the first of --buffers)"
        ),
    )
    simulate.add_argument(
        "--replications", type=int, default=200,
        help="IS replications per twist point and per buffer size",
    )
    simulate.add_argument(
        "--horizon-factor", type=int, default=10,
        help="simulation horizon = factor * buffer size (paper: 10)",
    )
    simulate.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for independent legs (default: serial)",
    )
    simulate.add_argument(
        "--backend",
        choices=("auto",) + registry.names(),
        default="auto",
        help=(
            "conditional generation backend (default: auto = Hosking; "
            "non-conditional backends are rejected at construction)"
        ),
    )
    simulate.add_argument(
        "--block-size", type=int, default=None, metavar="B",
        help=(
            "blocked BLAS-3 Hosking kernel block size (default/1: exact "
            "per-step loop, bit-identical to previous releases; B>1: "
            "same law, allclose within 1e-10, typically >=5x faster)"
        ),
    )
    simulate.add_argument(
        "--shared-paths", action="store_true",
        help=(
            "evaluate the whole twist grid from ONE shared background "
            "generation (common random numbers) instead of one "
            "independent IS batch per twist"
        ),
    )
    simulate.add_argument(
        "--num-sources", type=int, default=1, metavar="N",
        help=(
            "multiplex N homogeneous copies of the fitted source: the "
            "twist scan and overflow sweep run on the aggregate model "
            "and a capacity-planning panel (effective bandwidth, "
            "admission, bufferless loss) is printed"
        ),
    )
    simulate.add_argument(
        "--shards", type=int, default=1,
        help=(
            "shard count for the aggregate engine feed (grouping only: "
            "bit-identical output at any value)"
        ),
    )
    simulate.add_argument(
        "--chunk-frames", type=int, default=None, metavar="L",
        help=(
            "also run a chunked-generation panel: synthesize the sweep "
            "horizon through the scene-chunked pipeline in L-frame "
            "chunks and print its engine report"
        ),
    )
    simulate.add_argument(
        "--processes", type=int, default=None, metavar="P",
        help=(
            "process-pool size for the --num-sources aggregate feed "
            "and for --chunk-frames chunk jobs (default: "
            "REPRO_PROCESSES or 1; never changes output bits)"
        ),
    )
    simulate.add_argument(
        "--transport", choices=("auto", "shm", "pickle"), default="auto",
        help=(
            "cross-process result transport for pooled generation: "
            "auto routes large ndarray results through shared-memory "
            "segments when available, shm forces that path, pickle "
            "restores the pipe round trip (never changes output bits)"
        ),
    )
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metric snapshot as JSON lines",
    )

    overflow = sub.add_parser(
        "overflow",
        help="trace-driven multiplexer overflow probabilities",
    )
    overflow.add_argument("trace", help="trace file")
    overflow.add_argument(
        "--utilization", type=float, nargs="+", default=[0.8, 0.6, 0.4],
    )
    overflow.add_argument(
        "--buffers", type=float, nargs="+",
        default=[25.0, 50.0, 100.0, 200.0],
        help="normalized buffer sizes",
    )
    overflow.add_argument("--frame-rate", type=float, default=30.0)

    bakeoff = sub.add_parser(
        "bakeoff",
        help=(
            "paired cross-estimator accuracy study on known-H "
            "synthetic paths"
        ),
    )
    bakeoff.add_argument(
        "--hurst", type=float, nargs="+", metavar="H",
        default=[0.6, 0.7, 0.8, 0.9],
        help="true Hurst parameters of the generated paths",
    )
    bakeoff.add_argument(
        "--horizons", type=int, nargs="+", metavar="N",
        default=[1 << 12, 1 << 14],
        help="path lengths in samples",
    )
    bakeoff.add_argument(
        "--backends", nargs="+",
        choices=("all",) + registry.names(),
        default=["davies_harte"],
        help="generation backends ('all' = every registered backend)",
    )
    bakeoff.add_argument(
        "--estimators", nargs="+",
        choices=tuple(HURST_ESTIMATORS),
        default=None,
        help="estimators to enter (default: all)",
    )
    bakeoff.add_argument(
        "--replications", type=int, default=8,
        help="paths per (backend, hurst, horizon) cell",
    )
    bakeoff.add_argument("--seed", type=int, default=None)
    bakeoff.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (pooled table or full JSON matrix)",
    )
    bakeoff.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metric snapshot as JSON lines",
    )
    return parser


def _cmd_synthesize(args: argparse.Namespace) -> int:
    if args.mode == "intraframe":
        config = SyntheticCodecConfig.intraframe_paper_like(
            num_frames=args.frames
        )
    else:
        config = SyntheticCodecConfig.paper_like(num_frames=args.frames)
    trace = SyntheticMPEGCodec(config).generate(random_state=args.seed)
    save_trace(trace, args.output)
    print(f"wrote {trace.num_frames} frames to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace, frame_rate=args.frame_rate)
    params = trace_parameters(trace, coder="(from file)")
    print("trace parameters:")
    for label, value in params.rows().items():
        print(f"  {label}: {value}")
    summary = trace.summary()
    print("\nframe-size statistics (bytes):")
    for key, value in summary.as_dict().items():
        print(f"  {key}: {value:.1f}" if isinstance(value, float)
              else f"  {key}: {value}")
    print(f"  mean rate: {trace.mean_rate_bps / 1e3:.0f} kbit/s")

    print("\nHurst estimates:")
    print(f"  variance-time: "
          f"{variance_time_estimate(trace.sizes).hurst:.3f}")
    print(f"  R/S:           {rs_estimate(trace.sizes).hurst:.3f}")
    print(f"  Whittle:       {whittle_estimate(trace.sizes).hurst:.3f}")
    print(f"  MAVAR:         {mavar_estimate(trace.sizes).hurst:.3f}")
    if trace.gop is not None:
        print(f"\nGOP pattern: {trace.gop.pattern_string}")
        for frame_type, s in trace.type_summaries().items():
            print(f"  {frame_type}: n={s.count}, mean={s.mean:.0f}")
    return 0


def _metrics_context(args: argparse.Namespace) -> RunContext:
    """A live context when ``--metrics-out`` was given, else the null one."""
    if getattr(args, "metrics_out", None):
        return RunContext()
    return NULL_CONTEXT


def _write_metrics(
    ctx: RunContext, args: argparse.Namespace, **extra
) -> None:
    """Export ``ctx``'s snapshot to ``--metrics-out`` as JSON lines."""
    if not getattr(args, "metrics_out", None):
        return
    header = {
        "command": args.command,
        "trace": getattr(args, "trace", None),
        "seed": args.seed,
        "coefficient_cache": dict(
            coefficient_cache_info()._asdict()
        ),
        "spectral_cache": dict(
            spectral_cache_info()._asdict()
        ),
        **extra,
    }
    with open(args.metrics_out, "w") as fh:
        fh.write(to_json_lines(ctx.snapshot(), header=header))
    print(f"wrote metrics to {args.metrics_out}")


def _cmd_fit(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace, frame_rate=args.frame_rate)
    ctx = _metrics_context(args)
    model = UnifiedVBRModel(
        max_lag=args.max_lag,
        background_method=args.background,
        metrics=ctx.scoped(phase="fit"),
    ).fit(trace, random_state=args.seed)
    print(fit_report(model))
    if args.generate:
        if not args.output:
            print("error: --generate requires --output", file=sys.stderr)
            return 2
        synthetic = model.generate(
            args.generate,
            backend=args.backend,
            chunk_frames=args.chunk_frames,
            processes=args.processes,
            random_state=args.seed,
        )
        save_trace(
            VideoTrace(
                sizes=synthetic,
                frame_rate=trace.frame_rate,
                name=f"{trace.name}-synthetic",
            ),
            args.output,
        )
        print(f"\nwrote {args.generate} synthetic frames to "
              f"{args.output}")
    _write_metrics(ctx, args, max_lag=args.max_lag)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace, frame_rate=args.frame_rate)
    ctx = _metrics_context(args)

    model = UnifiedVBRModel(
        max_lag=args.max_lag, metrics=ctx.scoped(phase="fit")
    ).fit(trace, random_state=args.seed)
    print(f"fitted: {model!r}")

    # Extra child streams are spawned ONLY for the modes that consume
    # them (aggregate mode, chunked panel): spawn_rngs(seed, k) yields
    # the same first children for any k, so the historical streams stay
    # bit for bit whatever new panels ride along.
    extra = 1 if args.chunk_frames else 0
    if args.num_sources > 1:
        spawned = spawn_rngs(args.seed, 4 + extra)
        rng_search, rng_curve, rng_agg, rng_feed = spawned[:4]
        aggregate = AggregateVBRModel(
            model, args.num_sources, random_state=rng_agg
        )
        transform = aggregate.arrival_transform()
        correlation = aggregate.background_correlation
        print(f"aggregate: {aggregate!r}")
    else:
        spawned = spawn_rngs(args.seed, 2 + extra)
        rng_search, rng_curve = spawned[:2]
        transform = model.arrival_transform()
        correlation = model.background_correlation
    rng_chunk = spawned[-1] if extra else None

    mu = service_rate_for_utilization(1.0, args.utilization)
    search_buffer = (
        float(args.search_buffer) if args.search_buffer is not None
        else float(args.buffers[0])
    )

    search = search_twisted_mean(
        correlation,
        transform,
        service_rate=mu,
        buffer_size=search_buffer,
        horizon=max(int(args.horizon_factor * search_buffer), 1),
        twist_values=args.twists,
        replications=args.replications,
        random_state=rng_search,
        workers=args.workers,
        backend=args.backend,
        block_size=args.block_size,
        shared_paths=args.shared_paths,
        metrics=ctx.scoped(phase="search"),
    )
    mode = "shared-path sweep" if args.shared_paths else "twist scan"
    print(
        f"\n{mode} at b={search_buffer:g}, "
        f"rho={args.utilization:g}, N={args.replications}:"
    )
    print(
        "m*".rjust(8) + "log10 P".rjust(12) + "norm var".rjust(12)
        + "hits".rjust(8) + "ESS".rjust(10)
    )
    for m_star, estimate in zip(search.twist_values, search.estimates):
        log_p = estimate.log10_probability
        nv = estimate.normalized_variance
        print(
            f"{m_star:>8g}"
            + (f"{log_p:>12.2f}" if np.isfinite(log_p) else f"{'-inf':>12}")
            + (f"{nv:>12.3g}" if np.isfinite(nv) else f"{'inf':>12}")
            + f"{estimate.hits:>8d}"
            + f"{estimate.ess:>10.1f}"
        )
    best = search.best_twist
    print(f"favorable twist: m* = {best:g} "
          f"(variance reduction vs m*=0: "
          f"{search.variance_reduction_vs(0):.3g}x)")

    curve = overflow_vs_buffer_curve(
        correlation,
        transform,
        utilization=args.utilization,
        buffer_sizes=args.buffers,
        replications=args.replications,
        twisted_mean=best,
        horizon_factor=args.horizon_factor,
        random_state=rng_curve,
        workers=args.workers,
        backend=args.backend,
        block_size=args.block_size,
        metrics=ctx.scoped(phase="curve"),
    )
    print(f"\noverflow sweep at m*={best:g}:")
    print(
        "buffer b".rjust(10) + "log10 P".rjust(12) + "rel err".rjust(10)
        + "hits".rjust(8) + "ESS".rjust(10)
    )
    for b, estimate in zip(curve.buffer_sizes, curve.estimates):
        log_p = estimate.log10_probability
        re = estimate.relative_error
        print(
            f"{b:>10g}"
            + (f"{log_p:>12.2f}" if np.isfinite(log_p) else f"{'-inf':>12}")
            + (f"{re:>10.2f}" if np.isfinite(re) else f"{'inf':>10}")
            + f"{estimate.hits:>8d}"
            + f"{estimate.ess:>10.1f}"
        )
    if args.num_sources > 1:
        _print_capacity_panel(model, args, ctx, rng_feed)
    if args.chunk_frames:
        _print_chunked_panel(model, args, ctx, rng_chunk)
    _write_metrics(
        ctx,
        args,
        utilization=args.utilization,
        best_twist=best,
        search_buffer=search_buffer,
        replications=args.replications,
    )
    return 0


def _print_capacity_panel(
    model: UnifiedVBRModel, args: argparse.Namespace, ctx, rng_feed
) -> None:
    """Sharded-engine feed plus the Norros capacity-planning numbers."""
    n = args.num_sources
    engine = ShardedAggregateModel.from_unified(
        model, n, metrics=ctx.scoped(phase="aggregate")
    )
    horizon = max(int(args.horizon_factor * max(args.buffers)), 64)
    feed = engine.generate(
        horizon,
        shards=args.shards,
        processes=args.processes,
        transport=args.transport,
        random_state=rng_feed,
    )
    print(
        f"\naggregate engine feed: N={feed.num_sources}, "
        f"horizon={feed.horizon}, shards={feed.shards}, "
        f"processes={feed.processes}, "
        f"mean/slot={feed.arrivals.mean():.4g} "
        f"(population mean {feed.mean_rate:.4g})"
    )
    pop = engine.population
    buffer_norm = float(args.buffers[0])
    epsilon = 1e-6
    counts = sorted({1, max(n // 10, 1), n})
    curve = effective_bandwidth_vs_n(
        pop, counts, buffer_size=buffer_norm, epsilon=epsilon, metrics=ctx
    )
    print(
        f"effective bandwidth vs N (b={buffer_norm:g} x mean, "
        f"eps={epsilon:g}):"
    )
    print("N".rjust(10) + "capacity".rjust(14) + "per source".rjust(14)
          + "util".rjust(8))
    for count, cap, per, util in zip(
        curve.n_values, curve.bandwidths, curve.per_source,
        curve.utilizations,
    ):
        print(f"{count:>10d}{cap:>14.4g}{per:>14.4g}{util:>8.3f}")
    capacity = float(curve.bandwidths[-1])
    admitted = admissible_sources(
        pop,
        capacity=capacity,
        buffer_size=buffer_norm,
        epsilon=epsilon,
        n_max=max(4 * n, 16),
        metrics=ctx,
    )
    loss = bufferless_loss_gaussian(
        mean_rate=pop.mean_rate,
        std=float(np.sqrt(pop.slot_variance)),
        capacity=capacity,
    )
    print(f"admissible sources at c={capacity:.4g}: {admitted}")
    print(f"bufferless Gaussian loss at that capacity: {loss:.3g}")


def _print_chunked_panel(
    model: UnifiedVBRModel, args: argparse.Namespace, ctx, rng_chunk
) -> None:
    """Chunked-pipeline engine report over the sweep horizon."""
    chunked_ctx = ctx.scoped(phase="chunked")
    source = registry.resolve(
        args.backend,
        model.background_correlation,
        chunked=True,
        metrics=chunked_ctx,
    )
    horizon = max(
        int(args.horizon_factor * max(args.buffers)), args.chunk_frames
    )
    generator = ChunkedGenerator(
        source,
        chunk_frames=args.chunk_frames,
        processes=args.processes,
        transport=args.transport,
        metrics=chunked_ctx,
    )
    generator.generate(horizon, random_state=rng_chunk)
    report = generator.last_report
    print(
        f"\nchunked generation ({source.name}): "
        f"horizon={report.horizon}, "
        f"{report.num_chunks} x {report.chunk_frames}-frame chunks, "
        f"mode={report.mode}, window={report.window}, "
        f"processes={report.processes}"
    )
    print(
        f"  generate {report.generate_seconds:.3f}s, "
        f"stitch {report.stitch_seconds:.3f}s, "
        f"occupancy {report.occupancy:.2f}, "
        f"peak chunk {report.peak_chunk_bytes} bytes"
    )


def _cmd_overflow(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace, frame_rate=args.frame_rate)
    arrivals = trace.normalized_sizes()
    header = "buffer b".ljust(10) + "".join(
        f"util {u:g}".rjust(12) for u in args.utilization
    )
    print(header)
    columns = []
    for utilization in args.utilization:
        mu = service_rate_for_utilization(1.0, utilization)
        estimates = steady_state_overflow_from_trace(
            arrivals, mu, args.buffers
        )
        columns.append(estimates)
    for i, b in enumerate(args.buffers):
        row = f"{b:<10g}"
        for column in columns:
            log_p = column[i].log10_probability
            row += (
                f"{log_p:>12.2f}" if np.isfinite(log_p) else
                f"{'-inf':>12}"
            )
        print(row)
    print("(values are log10 P(Q > b); -inf = no overflow in the trace)")
    return 0


def _cmd_bakeoff(args: argparse.Namespace) -> int:
    import json

    ctx = _metrics_context(args)
    result = run_bakeoff(
        hursts=args.hurst,
        horizons=args.horizons,
        backends=args.backends,
        estimators=args.estimators,
        replications=args.replications,
        random_state=args.seed,
        metrics=ctx,
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        grid = (
            f"H in {{{', '.join(f'{h:g}' for h in result.hursts)}}}, "
            f"horizons {{{', '.join(str(n) for n in result.horizons)}}}, "
            f"backends {{{', '.join(result.backends)}}}, "
            f"{result.replications} paired paths/cell"
        )
        print(f"bake-off: {grid}")
        print(result.table())
        print(f"winner (pooled RMSE): {result.winner('rmse')}")
    _write_metrics(
        ctx,
        args,
        replications=args.replications,
        winner=result.winner("rmse"),
    )
    return 0


_COMMANDS = {
    "synthesize": _cmd_synthesize,
    "analyze": _cmd_analyze,
    "fit": _cmd_fit,
    "simulate": _cmd_simulate,
    "overflow": _cmd_overflow,
    "bakeoff": _cmd_bakeoff,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
