"""Ablation — compensated (paper Step 4) vs Hermite-inverse backgrounds.

The paper divides the fitted ACF tail by a scalar attenuation factor
(eq. 14).  Our extension inverts the transform's exact Hermite-
expansion effect lag by lag ("the automatic search for the best
background autocorrelation structure" the paper leaves as future
work).  The bench fits both variants and compares the regenerated
foreground ACF error against the empirical ACF.
"""

import numpy as np

from repro.core.unified import UnifiedVBRModel
from repro.estimators.acf import sample_acf

from .conftest import format_series


def test_ablation_background_methods(benchmark, intra_trace_full, emit):
    def fit_both():
        out = {}
        for method in ("compensated", "hermite-inverse"):
            model = UnifiedVBRModel(
                max_lag=500, background_method=method
            ).fit(intra_trace_full, random_state=7)
            y = model.generate(
                intra_trace_full.num_frames,
                method="davies-harte",
                random_state=81,
            )
            out[method] = sample_acf(y, 500)
        return out

    acfs = benchmark.pedantic(fit_both, rounds=1, iterations=1)
    empirical = sample_acf(intra_trace_full.sizes, 500)

    rows = []
    errors = {}
    for method, acf in acfs.items():
        err = float(np.mean(np.abs(acf[1:] - empirical[1:])))
        errors[method] = err
        rows.append((method, f"{err:.4f}",
                     f"{float(np.max(np.abs(acf[1:] - empirical[1:]))):.4f}"))
    emit(
        "== Ablation: background calibration methods (ACF match) ==",
        *format_series(
            ("method", "mean |ACF error|", "max |ACF error|"), rows
        ),
    )
    # Both produce a usable match; the exact inversion should not be
    # worse than the scalar compensation.
    assert errors["compensated"] < 0.12
    assert errors["hermite-inverse"] < 0.1
    assert errors["hermite-inverse"] <= errors["compensated"] + 0.02
