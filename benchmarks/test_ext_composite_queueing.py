"""Extension — queueing with the composite (I/B/P) source.

The paper's §4 queueing study uses the intraframe model.  With the
GOP-phase-aware arrival transform, the same importance-sampling
machinery accepts the composite interframe model directly; this bench
compares the composite-model overflow curve against the interframe
trace-driven result, and against a *stationary* approximation that
ignores the GOP phase (shuffling all frame types into one marginal).
The deterministic I/P/B cycle adds sub-GOP burst structure that the
stationary approximation misses at small buffers.
"""

import numpy as np

from repro.marginals.empirical import EmpiricalDistribution
from repro.marginals.transform import MarginalTransform
from repro.queueing.multiplexer import service_rate_for_utilization
from repro.queueing.overflow import steady_state_overflow_from_trace
from repro.simulation.importance import is_overflow_probability

from .conftest import format_series, scaled

UTILIZATION = 0.6
BUFFER_SIZES = [10.0, 25.0, 50.0, 100.0]
REPLICATIONS = 600
TWISTED_MEAN = 1.0


def test_ext_composite_queueing(benchmark, composite_model,
                                ibp_trace_full, emit):
    mu = service_rate_for_utilization(1.0, UTILIZATION)
    gop_transform = composite_model.arrival_transform()

    # Stationary approximation: one pooled marginal for all frames.
    pooled = EmpiricalDistribution(ibp_trace_full.sizes, bins=300)
    pooled_transform = MarginalTransform(pooled)
    pooled_mean = pooled.mean

    def stationary(x):
        return np.asarray(pooled_transform(x), dtype=float) / pooled_mean

    def run_all():
        gop_curve = []
        flat_curve = []
        for i, b in enumerate(BUFFER_SIZES):
            kwargs = dict(
                service_rate=mu,
                buffer_size=b,
                horizon=10 * int(b),
                twisted_mean=TWISTED_MEAN,
                replications=scaled(REPLICATIONS),
            )
            gop_curve.append(
                is_overflow_probability(
                    composite_model.background_correlation,
                    gop_transform,
                    random_state=600 + i,
                    **kwargs,
                )
            )
            flat_curve.append(
                is_overflow_probability(
                    composite_model.background_correlation,
                    stationary,
                    random_state=700 + i,
                    **kwargs,
                )
            )
        return gop_curve, flat_curve

    gop_curve, flat_curve = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    trace_estimates = steady_state_overflow_from_trace(
        ibp_trace_full.normalized_sizes(), mu, BUFFER_SIZES
    )

    rows = [
        (
            int(b),
            f"{t.log10_probability:.2f}",
            f"{g.log10_probability:.2f}",
            f"{f.log10_probability:.2f}",
        )
        for b, t, g, f in zip(
            BUFFER_SIZES, trace_estimates, gop_curve, flat_curve
        )
    ]
    emit(
        "== Extension: composite (I/B/P) source queueing "
        f"(util {UTILIZATION}) ==",
        *format_series(
            ("buffer b", "I/B/P trace", "GOP-aware model",
             "stationary approx"),
            rows,
        ),
        "the GOP-aware transform reproduces the trace; a stationary "
        "pooled marginal misses the deterministic I/P/B cycle",
    )
    # The GOP-aware model tracks the trace within half a decade.
    for t, g in zip(trace_estimates, gop_curve):
        if t.probability > 0:
            assert abs(
                g.log10_probability - t.log10_probability
            ) < 0.6
    # All estimates finite and ordered sensibly.
    for g in gop_curve:
        assert g.probability > 0
