"""Ablation — chunked multiprocess pipeline vs single-pass generation.

Three claims, one workload (the ISSUE pins the speedup assertion at a
horizon >= 2^22 on >= 4 cores):

- **Multi-core speedup:** the same chunk plan, same seeds, same bits,
  dispatched on a process pool instead of in-line, must clear >= 3x
  once >= 4 cores are available.  The assertion is gated on
  ``os.cpu_count() >= 4`` (a 1-core CI box cannot exhibit it); the
  measurements are recorded unconditionally so the JSON dump shows the
  actual ratio wherever the bench ran.
- **Single-process sanity:** chunking is not a tax — the in-line
  chunked pipeline stays within ``SINGLE_OVERHEAD`` of the single-pass
  Davies-Harte generator (in practice it is *faster* at 2^22: many
  2^17-point FFTs beat one 2^23-point FFT plus a 4M-lag ACVF build).
- **O(chunk) memory:** tracemalloc peak beyond the horizon-linear
  arrays (output, raw chunk list, correction block) is dominated by
  the cached ``(chunk, window)`` bridge matrix — it must stay under
  ``MEMORY_FACTOR`` times that matrix at *both* probe horizons, i.e.
  it must not grow with the horizon.
"""

import os
import time
import tracemalloc

import numpy as np

from repro.processes import ChunkedGenerator, registry
from repro.processes.correlation import FGNCorrelation
from repro.processes.spectral_cache import clear_spectral_cache

from .conftest import SCALE, format_series

HURST = 0.8
CHUNK = 2**16
WINDOW = 256
#: The acceptance horizon; the smoke pass scales it down (never below
#: 2^18 so the plan keeps a meaningful number of chunks).
SPEEDUP_HORIZON = max(2**18, int(round(2**22 * SCALE)))
#: Memory probes: the budget must hold at both, which is what makes it
#: an O(chunk) statement rather than an O(horizon) one.
MEMORY_HORIZONS = (2**20, 2**22) if SCALE >= 1.0 else (2**18, 2**20)
#: In-line chunked generation vs the single-pass generator.
SINGLE_OVERHEAD = 2.0
#: Peak extra beyond 3x the output, in units of the bridge matrix.
MEMORY_FACTOR = 4.0


def _source():
    return registry.resolve("davies_harte", FGNCorrelation(HURST))


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return max(time.perf_counter() - start, 1e-9)


def test_ablation_multiprocess_speedup(benchmark, emit, record_bench):
    horizon = SPEEDUP_HORIZON
    cores = os.cpu_count() or 1
    processes = min(max(cores, 1), 16)
    source = _source()

    direct_seconds = min(
        _timed(lambda: source.sample(horizon, random_state=1))
        for _ in range(2)
    )

    single = ChunkedGenerator(
        source, chunk_frames=CHUNK, stitch_window=WINDOW, processes=1
    )
    pooled = ChunkedGenerator(
        source,
        chunk_frames=CHUNK,
        stitch_window=WINDOW,
        processes=processes,
    )
    # Warm runs populate the bridge-matrix and spectral caches on both
    # generators (the aggregate-bench idiom), and double as the
    # bit-identity check: the pool only schedules, it never reseeds.
    reference = single.generate(horizon, random_state=1)
    np.testing.assert_array_equal(
        pooled.generate(horizon, random_state=1), reference
    )

    single_seconds = min(
        _timed(lambda: single.generate(horizon, random_state=1))
        for _ in range(2)
    )
    benchmark.pedantic(
        lambda: pooled.generate(horizon, random_state=1),
        rounds=1, iterations=1,
    )
    pooled_seconds = min(
        _timed(lambda: pooled.generate(horizon, random_state=1))
        for _ in range(2)
    )
    speedup = single_seconds / pooled_seconds
    report = single.last_report

    emit(
        f"== Ablation: chunked pipeline "
        f"(horizon=2^{horizon.bit_length() - 1}, chunk={CHUNK}, "
        f"window={WINDOW}, {cores} cores) ==",
        *format_series(
            ("variant", "seconds", "vs single-process"),
            [
                ("single-pass Davies-Harte", f"{direct_seconds:.2f}s", "-"),
                (
                    "chunked, processes=1",
                    f"{single_seconds:.2f}s",
                    "1.0x",
                ),
                (
                    f"chunked, processes={processes}",
                    f"{pooled_seconds:.2f}s",
                    f"{speedup:.1f}x",
                ),
            ],
        ),
        f"stitch: {report.stitch_seconds:.3f}s serial "
        f"({report.num_chunks} chunks), bit-identical across pools",
    )
    record_bench(
        "chunked_multiprocess_speedup",
        horizon=horizon,
        chunk_frames=CHUNK,
        window=WINDOW,
        cores=cores,
        processes=processes,
        direct_seconds=direct_seconds,
        single_seconds=single_seconds,
        pooled_seconds=pooled_seconds,
        speedup=speedup,
        stitch_seconds=report.stitch_seconds,
    )
    # Chunking must not tax the single-process path.
    assert single_seconds < SINGLE_OVERHEAD * direct_seconds
    # The >= 3x multi-core bound only means something with cores to
    # run on; a 1-core box still records the measurement above.
    if cores >= 4:
        assert speedup > 3.0, (
            f"{speedup:.2f}x with {processes} processes on {cores} cores"
        )


def test_chunked_memory_is_horizon_independent(emit, record_bench):
    source = _source()
    bridge_bytes = CHUNK * WINDOW * 8
    rows = []
    extras = []
    for horizon in MEMORY_HORIZONS:
        clear_spectral_cache()
        generator = ChunkedGenerator(
            source, chunk_frames=CHUNK, stitch_window=WINDOW, processes=1
        )
        tracemalloc.start()
        out = generator.generate(horizon, random_state=0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Horizon-linear arrays: the output, the raw chunk list, and
        # the correction block are each ~out.nbytes.  What remains must
        # be the O(chunk x window) stitch machinery.
        extra = peak - 3 * out.nbytes
        extras.append(extra)
        rows.append(
            (
                f"2^{horizon.bit_length() - 1}",
                f"{peak / 2**20:.1f}",
                f"{max(extra, 0) / 2**20:.1f}",
                f"{MEMORY_FACTOR * bridge_bytes / 2**20:.0f}",
            )
        )
        del out, generator
    emit(
        "== Chunked pipeline peak memory (tracemalloc) ==",
        *format_series(
            ("horizon", "peak MiB", "extra MiB", "budget MiB"), rows
        ),
    )
    record_bench(
        "chunked_memory",
        chunk_frames=CHUNK,
        window=WINDOW,
        horizons=list(MEMORY_HORIZONS),
        extra_bytes=extras,
        budget_bytes=MEMORY_FACTOR * bridge_bytes,
    )
    for horizon, extra in zip(MEMORY_HORIZONS, extras):
        assert extra < MEMORY_FACTOR * bridge_bytes, (
            f"horizon {horizon}: extra {extra / 2**20:.1f} MiB exceeds "
            f"the O(chunk) budget"
        )
