"""Fig. 15 — transient buffer overflow probability.

The paper plots log10 P(Q_k > b) against the stop time k for b = 200
at utilization 0.4 with 1000 replications, starting from an empty and
from a full buffer.  The two transients converge to the same steady
state; starting full converges from above, so a well-chosen initial
condition shortens the transient.
"""

import numpy as np

from repro.queueing.multiplexer import service_rate_for_utilization
from repro.simulation.runner import transient_overflow_curves

from .conftest import format_series, scaled

#: The paper's Fig. 15 parameters.
UTILIZATION = 0.4
BUFFER_SIZE = 200.0
HORIZON = 2000
REPLICATIONS = 1000
TWISTED_MEAN = 1.0

REPORT_TIMES = (100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800,
                2000)


def test_fig15_transient_overflow(benchmark, unified_model,
                                  arrival_transform, emit):
    curves = benchmark.pedantic(
        transient_overflow_curves,
        args=(unified_model.background_correlation, arrival_transform),
        kwargs={
            "utilization": UTILIZATION,
            "buffer_size": BUFFER_SIZE,
            "horizon": HORIZON,
            "replications": scaled(REPLICATIONS),
            "twisted_mean": TWISTED_MEAN,
            "random_state": 15,
        },
        rounds=1,
        iterations=1,
    )

    def log10(p):
        return f"{np.log10(p):.2f}" if p > 0 else "-inf"

    rows = [
        (k, log10(curves["empty"][k - 1]), log10(curves["full"][k - 1]))
        for k in REPORT_TIMES
    ]
    emit(
        "== Fig. 15: transient overflow probability log10 P(Q_k > b) ==",
        f"(util {UTILIZATION}, b = {BUFFER_SIZE:.0f}, "
        f"N = {scaled(REPLICATIONS)}, twist m* = {TWISTED_MEAN})",
        *format_series(
            ("stop time k", "empty start", "full start"), rows
        ),
        "paper shape: the two curves converge toward the same steady "
        "state; the full-buffer start approaches from above",
    )
    empty, full = curves["empty"], curves["full"]
    # Full start dominates early.
    early = slice(0, 200)
    assert float(np.mean(full[early])) >= float(np.mean(empty[early]))
    # The gap shrinks as k grows (convergence to steady state).
    early_gap = abs(
        float(np.mean(full[100:300])) - float(np.mean(empty[100:300]))
    )
    late_gap = abs(
        float(np.mean(full[-300:])) - float(np.mean(empty[-300:]))
    )
    assert late_gap < early_gap
    # The empty-start transient is increasing toward steady state.
    assert float(np.mean(empty[-500:])) > float(np.mean(empty[:200]))
