"""Ablation — cost of the observability layer on a Fig. 16-style sweep.

The observability contract is "no-op cheap when disabled": a run
without ``metrics=`` pays one attribute lookup and an empty method call
per instrumented site.  This bench bounds that cost directly:

1. run the importance-sampling buffer sweep plain and instrumented,
   checking the estimates are bit-identical (instrumentation never
   touches a random stream);
2. count the metric operations the instrumented run recorded
   (``MetricsRegistry.operation_count``) — a proxy for the number of
   instrumented call sites the disabled run executes;
3. microbenchmark the null context's per-call cost, and assert

   ``operation_count * null_cost_per_op < 2% of the plain sweep time``.

The site-count bound is used instead of comparing the two sweep wall
times because a few-millisecond effect drowns in run-to-run noise of a
multi-second sweep; the bound is two orders of magnitude more stable
and strictly conservative (enabled runs record at least as many ops as
disabled runs execute sites).
"""

import time

import numpy as np

from repro.observability import NULL_CONTEXT, RunContext
from repro.observability.sinks import sanitize_value
from repro.simulation.runner import overflow_vs_buffer_curve

from .conftest import format_series, scaled

#: Fig. 16 slice: one utilization, the two smallest paper buffers.
BUFFER_SIZES = [25.0, 50.0]
UTILIZATION = 0.8
TWIST = 0.5
REPLICATIONS = 300

#: The acceptance threshold for disabled-instrumentation overhead.
MAX_OVERHEAD = 0.02


def _sanitize_snapshot(snapshot):
    out = []
    for entry in snapshot:
        clean = {}
        for key, value in entry.items():
            if isinstance(value, list):
                value = [
                    {k: sanitize_value(v) for k, v in item.items()}
                    if isinstance(item, dict) else sanitize_value(item)
                    for item in value
                ]
            else:
                value = sanitize_value(value)
            clean[key] = value
        out.append(clean)
    return out


def _null_cost_per_op(calls: int = 200_000) -> float:
    """Seconds per disabled-instrumentation call (with label kwargs)."""
    start = time.perf_counter()
    for _ in range(calls):
        NULL_CONTEXT.inc("is.hits", 1.0, twist=0.5)
    return (time.perf_counter() - start) / calls


def test_observability_null_overhead(benchmark, unified_model,
                                     arrival_transform, emit,
                                     record_bench):
    replications = scaled(REPLICATIONS)
    kwargs = dict(
        utilization=UTILIZATION,
        buffer_sizes=BUFFER_SIZES,
        replications=replications,
        twisted_mean=TWIST,
        random_state=80,
    )
    correlation = unified_model.background_correlation
    timings = {}

    def sweep(label, metrics=None):
        start = time.perf_counter()
        curve = overflow_vs_buffer_curve(
            correlation, arrival_transform, metrics=metrics, **kwargs
        )
        timings[label] = time.perf_counter() - start
        return curve

    plain = benchmark.pedantic(
        lambda: sweep("plain"), rounds=1, iterations=1
    )
    ctx = RunContext()
    instrumented = sweep("instrumented", metrics=ctx)

    # Instrumentation must not perturb the estimates.
    for a, b in zip(plain.estimates, instrumented.estimates):
        assert a.probability == b.probability
        assert a.hits == b.hits
        assert a.ess == b.ess

    ops = ctx.registry.operation_count
    assert ops > 0
    per_op = _null_cost_per_op()
    bound = ops * per_op / timings["plain"]

    snapshot = _sanitize_snapshot(ctx.snapshot())
    ess_rows = [
        (entry["labels"].get("buffer", "?"), f"{entry['value']:.1f}")
        for entry in snapshot if entry["name"] == "is.ess"
    ]
    emit(
        "== Ablation: observability null-sink overhead "
        f"(Fig. 16 slice, N={replications}) ==",
        *format_series(
            ("quantity", "value"),
            [
                ("plain sweep (s)", f"{timings['plain']:.3f}"),
                ("instrumented sweep (s)",
                 f"{timings['instrumented']:.3f}"),
                ("metric operations", ops),
                ("null cost per op (ns)", f"{per_op * 1e9:.0f}"),
                ("bounded disabled overhead",
                 f"{bound * 100:.4f}%"),
                ("threshold", f"{MAX_OVERHEAD * 100:.0f}%"),
            ],
        ),
        "ESS per leg: " + ", ".join(
            f"b={b}: {e}" for b, e in ess_rows
        ),
    )
    record_bench(
        "observability_null_overhead",
        plain_seconds=timings["plain"],
        instrumented_seconds=timings["instrumented"],
        operation_count=ops,
        null_cost_per_op_seconds=per_op,
        bounded_overhead_fraction=bound,
        threshold=MAX_OVERHEAD,
        replications=replications,
        buffer_sizes=BUFFER_SIZES,
        utilization=UTILIZATION,
        twist=TWIST,
        metrics_snapshot=snapshot,
    )

    assert bound < MAX_OVERHEAD, (
        f"disabled-instrumentation bound {bound:.4%} exceeds "
        f"{MAX_OVERHEAD:.0%} of the sweep wall time"
    )
    # Sanity on the snapshot itself: the sweep's diagnostics are there.
    names = {entry["name"] for entry in snapshot}
    assert {"is.leg_seconds", "is.ess", "parallel.legs",
            "coeff_table.tables"} <= names
    finite_ess = [
        entry["value"] for entry in snapshot
        if entry["name"] == "is.ess"
    ]
    assert len(finite_ess) == len(BUFFER_SIZES)
    assert all(np.isfinite(v) and v >= 0 for v in finite_ess)
