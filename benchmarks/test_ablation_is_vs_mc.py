"""Ablation — importance sampling vs plain Monte Carlo.

At equal replication counts, IS with a near-optimal twist achieves a
far lower relative error on rare overflow events; equivalently, MC
needs orders of magnitude more replications for the same precision.
This quantifies the paper's motivation for Appendix B.
"""

import numpy as np

from repro.queueing.multiplexer import service_rate_for_utilization
from repro.simulation.importance import is_overflow_probability

from .conftest import format_series, scaled

UTILIZATION = 0.2
BUFFER_SIZE = 50.0
HORIZON = 500
REPLICATIONS = 1000
GOOD_TWIST = 2.5


def test_ablation_is_vs_mc(benchmark, unified_model, arrival_transform,
                           emit):
    reps = scaled(REPLICATIONS)
    kwargs = dict(
        service_rate=service_rate_for_utilization(1.0, UTILIZATION),
        buffer_size=BUFFER_SIZE,
        horizon=HORIZON,
        replications=reps,
    )

    def run_both():
        mc = is_overflow_probability(
            unified_model.background_correlation,
            arrival_transform,
            twisted_mean=0.0,
            random_state=71,
            **kwargs,
        )
        tw = is_overflow_probability(
            unified_model.background_correlation,
            arrival_transform,
            twisted_mean=GOOD_TWIST,
            random_state=72,
            **kwargs,
        )
        return mc, tw

    mc, tw = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        ("plain MC", f"{mc.probability:.3e}",
         f"{mc.relative_error:.3f}", mc.hits),
        (f"IS (m*={GOOD_TWIST})", f"{tw.probability:.3e}",
         f"{tw.relative_error:.3f}", tw.hits),
    ]
    reduction = (
        mc.normalized_variance / tw.normalized_variance
        if np.isfinite(mc.normalized_variance)
        else float("inf")
    )
    emit(
        f"== Ablation: IS vs MC (util {UTILIZATION}, b={BUFFER_SIZE:.0f},"
        f" k={HORIZON}, N={reps}) ==",
        *format_series(
            ("estimator", "P estimate", "relative error", "hits"), rows
        ),
        f"variance reduction: {reduction:.0f}x "
        "(the paper reports ~1000x at its operating point)",
    )
    assert tw.hits > mc.hits
    assert tw.relative_error < mc.relative_error
    # The two estimators agree when MC has any resolution at all.
    if mc.hits >= 5:
        sigma = np.hypot(mc.std_error, tw.std_error)
        assert abs(mc.probability - tw.probability) < 4 * sigma
