"""Extension — statistical multiplexing gain (the paper's §1 motivation).

The paper opens with the promise of "efficient statistical
multiplexing of bursty traffic".  This bench quantifies it inside the
reproduced framework: aggregates of 1, 4, and 16 homogeneous fitted
video sources feed the multiplexer at the same utilization, and the
overflow probability at the same normalized buffer size drops sharply
as sources are added (short-term burstiness averages out), while the
long-range dependence — which multiplexing cannot remove — keeps the
decay with buffer size slow for every aggregate size.
"""

import numpy as np

from repro.core.multiplex import AggregateVBRModel
from repro.queueing.multiplexer import service_rate_for_utilization
from repro.simulation.importance import is_overflow_probability

from .conftest import format_series, scaled

UTILIZATION = 0.4
BUFFER_SIZES = [10.0, 25.0, 50.0]
SOURCES = (1, 4, 16)
REPLICATIONS = 600
TWISTS = {1: 1.5, 4: 1.5, 16: 1.5}


def test_ext_multiplexing_gain(benchmark, unified_model, emit):
    def run_all():
        table = {}
        for n in SOURCES:
            aggregate = AggregateVBRModel(
                unified_model, n, random_state=50 + n
            )
            arrivals = aggregate.arrival_transform()
            estimates = []
            for i, b in enumerate(BUFFER_SIZES):
                estimates.append(
                    is_overflow_probability(
                        aggregate.background_correlation,
                        arrivals,
                        service_rate=service_rate_for_utilization(
                            1.0, UTILIZATION
                        ),
                        buffer_size=b,
                        horizon=10 * int(b),
                        twisted_mean=TWISTS[n],
                        replications=scaled(REPLICATIONS),
                        random_state=500 + 10 * n + i,
                    )
                )
            table[n] = (aggregate.attenuation, estimates)
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for n in SOURCES:
        attenuation, estimates = table[n]
        rows.append(
            (
                n,
                f"{attenuation:.3f}",
                *(f"{e.log10_probability:.2f}"
                  if e.probability > 0 else "<= -4"
                  for e in estimates),
            )
        )
    emit(
        "== Extension: statistical multiplexing gain "
        f"(util {UTILIZATION}) ==",
        *format_series(
            ("sources", "attenuation a",
             *(f"log10 P(Q>{int(b)})" for b in BUFFER_SIZES)),
            rows,
        ),
        "multiplexing averages out short-term burstiness (overflow "
        "drops with n)\nbut cannot remove the long-range dependence "
        "(decay with b stays slow).",
    )
    # Monotone multiplexing gain at every buffer size with resolution.
    for i in range(len(BUFFER_SIZES)):
        p1 = table[1][1][i].probability
        p16 = table[16][1][i].probability
        assert p16 < p1
    # CLT on the transform: attenuation rises toward 1.
    assert table[16][0] > table[1][0]
