"""Fig. 7 — the attenuation factor of the marginal transform.

The paper generates the background process X with the fitted ACF,
pushes it through h, and measures the foreground/background ACF ratio
at large lags, finding a = 0.94 for its transform.  This bench does
the same (Step 3) and also reports the Appendix A analytic value
(eq. 30) and the Hermite-predicted ratio at several lags.
"""

import numpy as np

from repro.core.calibration import (
    measure_attenuation_analytic,
    measure_attenuation_pilot,
)
from repro.marginals.attenuation import transformed_acf

from .conftest import format_series

PAPER_ATTENUATION = 0.94


def test_fig07_attenuation(benchmark, unified_model, emit):
    background = unified_model.fitted_acf_model.with_continuity()
    transform = unified_model.transform_

    pilot = benchmark.pedantic(
        measure_attenuation_pilot,
        args=(background, transform),
        kwargs={
            "pilot_length": 1 << 17,
            "max_lag": 400,
            "lag_range": (100, 400),
            "random_state": 11,
        },
        rounds=1,
        iterations=1,
    )
    analytic = measure_attenuation_analytic(transform)

    r = background.acvf(401)
    rh = transformed_acf(r, transform)
    rows = [
        (k, f"{r[k]:.4f}", f"{rh[k]:.4f}", f"{rh[k] / r[k]:.4f}")
        for k in (10, 60, 100, 200, 400)
    ]
    emit(
        "== Fig. 7: attenuation of the ACF under the transform ==",
        *format_series(
            ("lag", "background r", "foreground r_h", "ratio"), rows
        ),
        f"pilot-measured a (paper Step 3): {pilot:.4f} "
        f"(paper: {PAPER_ATTENUATION})",
        f"analytic a (eq. 30, lag->inf limit): {analytic:.4f}",
    )
    # a in (0, 1]; the finite-lag ratio sits between the asymptotic
    # analytic value and 1.
    assert 0.0 < analytic <= 1.0
    assert analytic - 0.1 <= pilot <= 1.0
    ratios = rh[1:] / r[1:]
    assert np.all(ratios <= 1.0 + 1e-9)
    assert np.all(np.diff(ratios[10:]) <= 1e-9)  # ratio falls toward a
