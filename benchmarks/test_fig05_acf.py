"""Fig. 5 — estimated autocorrelation of the trace (lags 1..500).

The paper's plot shows fast decay up to a "knee" around lag 60-80 and
a slowly decaying (power-law) tail beyond it.  The bench prints the
ACF at a grid of lags and asserts the knee structure.
"""

import numpy as np

from repro.estimators.acf import sample_acf

from .conftest import format_series

REPORT_LAGS = (1, 5, 10, 20, 40, 60, 80, 100, 150, 200, 300, 400, 500)


def test_fig05_empirical_acf(benchmark, intra_trace_full, emit):
    acf = benchmark.pedantic(
        sample_acf,
        args=(intra_trace_full.sizes, 500),
        rounds=1,
        iterations=1,
    )
    rows = [(k, f"{acf[k]:.4f}") for k in REPORT_LAGS]
    emit(
        "== Fig. 5: empirical autocorrelation function ==",
        *format_series(("lag k", "r(k)"), rows),
        "paper shape: fast decay to a knee near lag 60-80, then a "
        "slowly decaying LRD tail",
    )
    # Knee structure: early per-lag decay much faster than late decay.
    early_rate = (acf[1] - acf[60]) / 59.0
    late_rate = (acf[100] - acf[500]) / 400.0
    assert acf[1] > 0.7
    assert acf[500] > 0.1
    assert early_rate > 2.0 * late_rate
    # Non-summable look: the tail stays high for hundreds of lags.
    assert acf[300] > 0.15
