"""Fig. 14 — normalized variance of the IS estimator vs the twisted mean.

The paper scans m* with stop time k = 500, utilization 0.2, normalized
buffer size b = 25, and 1000 replications; the normalized variance
shows a clear valley (their near-optimal m* = 3.2, variance reduction
~1000x vs plain MC).  The bench reproduces the scan on the fitted
model and prints the valley.
"""

import numpy as np

from repro.queueing.multiplexer import service_rate_for_utilization
from repro.simulation.twist_search import search_twisted_mean
from repro.stats.asciiplot import ascii_plot

from .conftest import format_series, scaled

#: The paper's Fig. 14 parameters.
UTILIZATION = 0.2
BUFFER_SIZE = 25.0
HORIZON = 500
REPLICATIONS = 1000
TWIST_GRID = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0]


def test_fig14_twist_valley(benchmark, unified_model, arrival_transform,
                            emit):
    result = benchmark.pedantic(
        search_twisted_mean,
        args=(unified_model.background_correlation, arrival_transform),
        kwargs={
            "service_rate": service_rate_for_utilization(1.0, UTILIZATION),
            "buffer_size": BUFFER_SIZE,
            "horizon": HORIZON,
            "twist_values": TWIST_GRID,
            "replications": scaled(REPLICATIONS),
            "random_state": 14,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"{m:.1f}",
            f"{e.probability:.3e}",
            f"{nv:.4f}",
            e.hits,
        )
        for m, e, nv in zip(
            result.twist_values, result.estimates,
            result.scaled_variances,
        )
    ]
    emit(
        "== Fig. 14: normalized variance vs twisted mean m* ==",
        f"(util {UTILIZATION}, b = {BUFFER_SIZE:.0f}, k = {HORIZON}, "
        f"N = {scaled(REPLICATIONS)})",
        *format_series(
            ("m*", "P estimate", "normalized var (max=1)", "hits"), rows
        ),
        f"valley bottom (near-optimal m*): {result.best_twist:.1f} "
        "(paper: 3.2)",
        f"variance reduction vs plain MC: "
        f"{result.variance_reduction_vs(0):.0f}x (paper: ~1000x)",
        ascii_plot(
            result.twist_values,
            {
                "normalized variance": np.clip(
                    result.scaled_variances, 0.0, 1.0
                )
            },
            title="Fig. 14 — normalized variance vs twisted mean m*",
            x_label="m*",
            y_label="scaled variance",
            height=12,
        ),
    )
    # The valley is interior: neither plain MC nor the extreme twist.
    assert 0.0 < result.best_twist < TWIST_GRID[-1]
    # Twisting helps substantially.
    assert result.variance_reduction_vs(0) > 5.0
    # The scan is a valley: scaled variance at the ends exceeds the
    # bottom by an order of magnitude.
    scaled_var = result.scaled_variances
    bottom = scaled_var[result.best_index]
    assert scaled_var[0] > 5 * bottom
    assert scaled_var[-1] > 5 * bottom
