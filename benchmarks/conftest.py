"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and prints
the corresponding rows/series.  Benches run the experiments at the
paper's own scale by default (238,626-frame traces, 1000 replications);
set ``REPRO_BENCH_SCALE`` (e.g. ``0.2``) to scale the replication
counts down for a quick pass, or above 1 for extra precision.

Output is printed through ``emit`` (bypassing pytest's capture) so the
series land in the bench log verbatim.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import CompositeMPEGModel, UnifiedVBRModel
from repro.video import SyntheticCodecConfig, SyntheticMPEGCodec

#: Global replication scale factor.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Seed used for the "empirical" traces, fixed so every bench sees the
#: same two traces (the paper has exactly one empirical trace too).
TRACE_SEED = 1995

#: When set, machine-readable bench results are written to this path at
#: the end of the session (used by the ``bench-smoke`` make target).
BENCH_JSON_ENV = "REPRO_BENCH_JSON"

_bench_records: dict = {}


def scaled(replications: int, *, minimum: int = 50) -> int:
    """Scale a replication count by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(replications * SCALE)))


@pytest.fixture(scope="session")
def emit(request):
    """Print a line to the real terminal, bypassing pytest capture."""
    capmanager = request.config.pluginmanager.getplugin("capturemanager")

    def _emit(*lines: str) -> None:
        with capmanager.global_and_fixture_disabled():
            for line in lines:
                print(line)

    _emit("")
    return _emit


@pytest.fixture(scope="session")
def record_bench():
    """Record a named bench result for the end-of-session JSON dump."""

    def _record(name: str, **fields) -> None:
        _bench_records[name] = fields

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Write collected bench records to ``$REPRO_BENCH_JSON`` if set."""
    path = os.environ.get(BENCH_JSON_ENV, "").strip()
    if not path or not _bench_records:
        return
    payload = {"scale": SCALE, "benches": _bench_records}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture(scope="session")
def intra_trace_full():
    """Full-length intraframe trace (the Figs. 1-8 and §4 substrate)."""
    config = SyntheticCodecConfig.intraframe_paper_like()
    return SyntheticMPEGCodec(config).generate(random_state=TRACE_SEED)


@pytest.fixture(scope="session")
def ibp_trace_full():
    """Full-length interframe (I/B/P) trace (the §3.3 substrate)."""
    config = SyntheticCodecConfig.paper_like()
    return SyntheticMPEGCodec(config).generate(random_state=TRACE_SEED)


@pytest.fixture(scope="session")
def unified_model(intra_trace_full):
    """The paper's §3.2 pipeline fitted to the intraframe trace.

    Uses the paper's own methodology: pilot attenuation measurement and
    the eq. 14 compensated background (the hermite-inverse variant is
    exercised by the ablation bench).
    """
    return UnifiedVBRModel(max_lag=500).fit(
        intra_trace_full, random_state=7
    )


@pytest.fixture(scope="session")
def composite_model(ibp_trace_full):
    """The §3.3 composite model fitted to the interframe trace.

    Uses 500-bin per-type histograms: the 238k-frame trace gives each
    frame type tens of thousands of samples, and coarse bins visibly
    flatten the small-B-frame quantiles in the Fig. 13 Q-Q comparison.
    """
    return CompositeMPEGModel(max_lag_i=41, histogram_bins=500).fit(
        ibp_trace_full, random_state=8
    )


@pytest.fixture(scope="session")
def arrival_transform(unified_model):
    """Unit-mean arrivals for the §4 queueing experiments."""
    return unified_model.arrival_transform()


def format_series(header, rows):
    """Format a small table: header tuple + row tuples."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return lines
