"""Fig. 12 — histogram of the composite model output vs the trace.

The paper compares relative-frequency histograms of bytes/frame for
the simulated process and the empirical (I/B/P) trace; the two curves
overlap closely, with most mass below ~12 kB.
"""

import numpy as np

from repro.stats.histogram import frequency_histogram

from .conftest import format_series


def test_fig12_histogram_comparison(benchmark, composite_model,
                                    ibp_trace_full, emit):
    def regenerate():
        # Pool many short paths: a single strongly-LRD path's
        # marginal wanders with its low-frequency excursion.
        traces = [
            composite_model.generate(3_600, random_state=41 + i)
            for i in range(64)
        ]
        return np.concatenate([t.sizes for t in traces])

    model_sizes = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    edges = np.linspace(0.0, 12_000.0, 25)
    h_trace = frequency_histogram(ibp_trace_full.sizes, edges=edges)
    h_model = frequency_histogram(model_sizes, edges=edges)

    rows = [
        (f"{int(lo)}-{int(hi)}", f"{ft:.4f}", f"{fm:.4f}")
        for lo, hi, ft, fm in zip(
            edges[:-1], edges[1:], h_trace.frequencies,
            h_model.frequencies,
        )
    ]
    overlap = h_trace.overlap(h_model)
    emit(
        "== Fig. 12: frame-size histograms, trace vs composite model ==",
        *format_series(("bytes/frame", "trace", "model"), rows),
        f"histogram intersection (1 = identical): {overlap:.4f}",
        "paper: visually overlapping histograms",
    )
    assert overlap > 0.92
