"""Fig. 1 — empirical marginal distribution (bytes/frame histogram).

The paper plots the relative-frequency histogram of the trace's frame
sizes, with the mass peaked at a few kB and a long tail out to
~35 kB/frame.  This bench prints the histogram series and asserts that
qualitative shape: unimodal low-kB peak, monotone heavy tail.
"""

import numpy as np

from repro.stats.histogram import frequency_histogram

from .conftest import format_series


def test_fig01_marginal_histogram(benchmark, intra_trace_full, emit):
    histogram = benchmark.pedantic(
        frequency_histogram,
        args=(intra_trace_full.sizes,),
        kwargs={"bins": 35, "value_range": (0.0, 35_000.0)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"{int(lo)}-{int(hi)}", f"{freq:.4f}")
        for lo, hi, freq in zip(
            histogram.edges[:-1], histogram.edges[1:],
            histogram.frequencies,
        )
    ]
    emit(
        "== Fig. 1: empirical frame-size distribution ==",
        *format_series(("bytes/frame", "frequency"), rows),
        f"mode bin center: {histogram.mode_center():.0f} bytes "
        "(paper: low-kB peak)",
    )
    # Shape assertions: peaked at low sizes, heavy monotone-ish tail.
    peak_index = int(np.argmax(histogram.frequencies))
    assert histogram.centers[peak_index] < 8_000
    assert histogram.frequencies[peak_index] > 0.1
    tail = histogram.frequencies[peak_index:]
    # The tail decays overall (allow small non-monotonic jitter).
    assert tail[-1] < 0.02
    assert np.sum(histogram.frequencies[-10:]) < 0.1
