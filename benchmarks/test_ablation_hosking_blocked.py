"""Ablation — blocked BLAS-3 Hosking kernel vs the per-step loop.

The per-step Hosking loop pays one O(k) matrix-vector product per step
— memory-bound level-2 work on a reversed view.  The blocked kernel
(``block_size=B``) lifts the old-history contribution of B consecutive
steps into a single GEMM against a contiguous reversed buffer, leaving
only the O(B^2) within-block triangle sequential.  This bench measures
the speedup over a (replications, horizon) grid — including the
unscaled 256 x 4096 acceptance workload — and bounds the overhead of
the exact ``block_size=1`` bypass.
"""

import time

import numpy as np

from repro.processes.coeff_table import CoefficientTable, resolve_acvf
from repro.processes.correlation import FGNCorrelation
from repro.processes.hosking import hosking_generate

from .conftest import format_series, scaled

CORRELATION = FGNCorrelation(0.8)
BLOCK = 64
#: (replications, horizon) grid; the last row is the acceptance
#: workload (unscaled: 256 x 4096).
GRID = ((256, 1024), (256, 4096))
BYPASS_REPS = 128
BYPASS_HORIZON = 1024
BYPASS_ROUNDS = 5


def _timed(table, reps, horizon, block_size):
    start = time.perf_counter()
    paths = hosking_generate(
        CORRELATION,
        horizon,
        size=reps,
        random_state=1,
        coeff_table=table,
        block_size=block_size,
    )
    return paths, max(time.perf_counter() - start, 1e-9)


def test_ablation_hosking_blocked(benchmark, emit, record_bench):
    max_horizon = max(h for _, h in GRID)
    # Warm the coefficient table outside the timers: both variants read
    # the same Durbin-Levinson rows, this ablation is about the
    # conditional-mean products.
    table = CoefficientTable(resolve_acvf(CORRELATION, max_horizon))
    table.ensure(max_horizon - 1)

    rows = []
    grid_records = []
    for reps_base, horizon in GRID:
        reps = scaled(reps_base)
        per_step_paths, per_step_seconds = _timed(table, reps, horizon, 1)
        if (reps_base, horizon) == GRID[-1]:
            start = time.perf_counter()
            blocked_paths = benchmark.pedantic(
                lambda: _timed(table, reps, horizon, BLOCK)[0],
                rounds=1,
                iterations=1,
            )
            blocked_seconds = max(time.perf_counter() - start, 1e-9)
        else:
            blocked_paths, blocked_seconds = _timed(
                table, reps, horizon, BLOCK
            )
        # Same seed => same innovation stream; the kernels must agree
        # to the documented allclose contract.
        np.testing.assert_allclose(
            blocked_paths, per_step_paths, rtol=1e-10, atol=1e-10
        )
        speedup = per_step_seconds / blocked_seconds
        rows.append(
            (
                f"{reps} x {horizon}",
                f"{per_step_seconds:.3f}s",
                f"{blocked_seconds:.3f}s",
                f"{speedup:.1f}x",
            )
        )
        grid_records.append(
            {
                "replications": reps,
                "horizon": horizon,
                "per_step_seconds": per_step_seconds,
                "blocked_seconds": blocked_seconds,
                "speedup": speedup,
            }
        )

    # Bypass overhead: block_size=1 must run the identical legacy loop,
    # so its cost over the implicit default is resolution-only noise.
    bypass_reps = scaled(BYPASS_REPS)
    default_best = min(
        _timed(table, bypass_reps, BYPASS_HORIZON, None)[1]
        for _ in range(BYPASS_ROUNDS)
    )
    bypass_best = min(
        _timed(table, bypass_reps, BYPASS_HORIZON, 1)[1]
        for _ in range(BYPASS_ROUNDS)
    )
    bypass_overhead = bypass_best / default_best - 1.0

    emit(
        f"== Ablation: blocked Hosking kernel (B={BLOCK}) ==",
        *format_series(
            ("reps x horizon", "per-step", "blocked", "speedup"), rows
        ),
        f"block_size=1 bypass overhead: {bypass_overhead * 100:+.2f}%",
    )
    record_bench(
        "hosking_blocked",
        block_size=BLOCK,
        grid=grid_records,
        bypass_replications=bypass_reps,
        bypass_horizon=BYPASS_HORIZON,
        bypass_overhead=bypass_overhead,
    )

    # The acceptance workload must clear 3x at smoke scale (the full
    # 256 x 4096 run lands around 8x).
    assert grid_records[-1]["speedup"] > 3.0
    assert bypass_overhead < 0.02
