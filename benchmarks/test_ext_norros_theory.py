"""Extension — simulation vs the Norros fBm overflow asymptote.

The paper's Fig. 17 discussion leans on the theory of its references
[23] (Norros) and [6] (Duffield & O'Connell): for self-similar input
the overflow probability decays Weibull-like, ``log P ~ -gamma *
b^{2-2H}``.  This bench validates the reproduced IS machinery against
that theory on the cleanest possible system: an FGN-driven Gaussian
queue (identity marginal), where the Norros approximation applies
directly.  Agreement here certifies both the generator and the
likelihood ratios independently of the video modeling.
"""

import numpy as np

from repro.processes.correlation import FGNCorrelation
from repro.queueing.theory import norros_overflow_approximation
from repro.simulation.importance import is_overflow_probability

from .conftest import format_series, scaled

HURST = 0.8
MEAN = 1.0
SERVICE = 2.0
BUFFER_SIZES = [5.0, 10.0, 20.0, 40.0, 80.0]
REPLICATIONS = 2000


def arrivals(x):
    """Gaussian arrivals: mean 1, variance 1 (can go negative — the
    Norros fluid model allows it)."""
    return x + MEAN


def test_ext_norros_theory(benchmark, emit):
    def run_curve():
        estimates = []
        for i, b in enumerate(BUFFER_SIZES):
            estimates.append(
                is_overflow_probability(
                    FGNCorrelation(HURST),
                    arrivals,
                    service_rate=SERVICE,
                    buffer_size=b,
                    horizon=int(12 * b),
                    twisted_mean=1.0,
                    replications=scaled(REPLICATIONS),
                    random_state=800 + i,
                )
            )
        return estimates

    estimates = benchmark.pedantic(run_curve, rounds=1, iterations=1)
    theory = norros_overflow_approximation(
        BUFFER_SIZES,
        hurst=HURST,
        mean_rate=MEAN,
        service_rate=SERVICE,
        variance_coefficient=1.0,
    )
    rows = [
        (
            int(b),
            f"{e.log10_probability:.2f}",
            f"{np.log10(t):.2f}",
        )
        for b, e, t in zip(BUFFER_SIZES, estimates, theory)
    ]
    emit(
        f"== Extension: IS simulation vs Norros asymptote "
        f"(FGN H={HURST}) ==",
        *format_series(
            ("buffer b", "IS log10 P", "Norros log10 P"), rows
        ),
        "the Norros formula is a lower-bound approximation; shapes "
        "(Weibull decay in b^{2-2H}) should align",
    )
    sim_logs = np.array([e.log10_probability for e in estimates])
    theory_logs = np.log10(theory)
    # Same Weibull shape: regress both on b^{2-2H} and compare slopes.
    x = np.asarray(BUFFER_SIZES) ** (2 - 2 * HURST)
    sim_slope = np.polyfit(x, sim_logs, 1)[0]
    theory_slope = np.polyfit(x, theory_logs, 1)[0]
    assert sim_slope < 0 and theory_slope < 0
    assert 0.4 < sim_slope / theory_slope < 2.5
    # Levels within 1.2 decades everywhere (it is a bound, not equality).
    assert np.all(np.abs(sim_logs - theory_logs) < 1.2)
