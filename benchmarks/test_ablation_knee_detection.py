"""Ablation — knee selection for the composite ACF fit.

The paper sets the knee to 60 "based on the intersection point of the
two fitting curves".  Our fitter scans candidate knees and minimizes
the combined squared error, which subsumes that heuristic.  The bench
compares the auto-detected knee against fixed choices (including the
paper's 60) on the full-length trace, measuring both the descriptive
fit RMSE and the regenerated-foreground ACF error.
"""

import numpy as np

from repro.core.unified import UnifiedVBRModel
from repro.estimators.acf import sample_acf

from .conftest import format_series

KNEE_CHOICES = (None, 30, 60, 120)


def test_ablation_knee_detection(benchmark, intra_trace_full, emit):
    def run_all():
        out = {}
        for knee in KNEE_CHOICES:
            model = UnifiedVBRModel(max_lag=500, knee=knee).fit(
                intra_trace_full, random_state=7
            )
            y = model.generate(
                120_000, method="davies-harte", random_state=97
            )
            out[knee] = (model, sample_acf(y, 500))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    empirical = sample_acf(intra_trace_full.sizes, 500)

    rows = []
    errors = {}
    for knee, (model, acf) in results.items():
        err = float(np.mean(np.abs(acf[1:] - empirical[1:])))
        errors[knee] = err
        label = "auto" if knee is None else str(knee)
        rows.append(
            (
                label,
                model.acf_fit_.knee,
                f"{model.acf_fit_.rmse:.4f}",
                f"{err:.4f}",
            )
        )
    emit(
        "== Ablation: knee selection for the composite ACF fit ==",
        *format_series(
            ("requested", "used knee", "fit RMSE",
             "regenerated ACF error"),
            rows,
        ),
        "paper: knee fixed at 60 by curve intersection; minimum-RMSE "
        "scanning generalises that heuristic",
    )
    auto_model = results[None][0]
    # Auto-detection lands in the fitted-knee ballpark and its fit RMSE
    # is no worse than any fixed choice (it minimizes exactly that).
    assert 20 <= auto_model.acf_fit_.knee <= 200
    best_fixed_rmse = min(
        results[k][0].acf_fit_.rmse for k in KNEE_CHOICES if k
    )
    assert auto_model.acf_fit_.rmse <= best_fixed_rmse + 1e-6
    # Every choice yields a usable generative model.
    for err in errors.values():
        assert err < 0.15
