"""Ablation — shared spectral tables vs per-call embedding (Fig. 16).

The Davies-Harte generator is exact in O(n log n), but the seed
implementation re-evaluated the model autocovariance and re-ran the
circulant eigenvalue FFT on *every* call — once per replication, per
leg, even though every leg of a ``horizon = 10 b`` buffer sweep reads a
prefix of one spectrum.  This bench replays a Fig. 16-style plain-MC
overflow sweep two ways:

- **seed**: the original per-replication loop — one
  :func:`davies_harte_generate` call per replication with
  ``spectral_table=False`` (fresh acvf + eigenvalue FFT every call);
- **cached**: :func:`mc_overflow_vs_buffer_curve` — one shared
  :class:`SpectralTable` prewarmed at the largest horizon, every leg
  slicing its prefix, and each leg drawing all replications as a single
  batched FFT pass.

The two must agree bit for bit (the cache is RNG-neutral and batched
generation consumes the stream in the same order) while the cached path
must be at least 3x faster.

A second bound pins the *bypass* path: generation with
``spectral_table=False`` now routes through
:func:`build_eigenvalue_entry` / :func:`apply_eigenvalue_policy`
instead of the seed's inline FFT, and that bookkeeping must stay under
2% of a per-call generation.  The bound is computed from a
microbenchmark of the bookkeeping delta (entry construction + policy
check minus the raw FFT both variants share) — comparing whole-sweep
wall times would drown a sub-millisecond effect in noise.

Replications are deliberately *not* scaled by ``REPRO_BENCH_SCALE``:
the speedup ratio depends on the calls-per-leg geometry, so shrinking
the sweep would measure a different ablation.  The whole bench takes a
few seconds.
"""

import time

import numpy as np

from repro.processes.correlation import CompositeCorrelation
from repro.processes.davies_harte import davies_harte_generate
from repro.processes.spectral_cache import (
    apply_eigenvalue_policy,
    build_eigenvalue_entry,
    circulant_eigenvalues,
    clear_spectral_cache,
    spectral_cache_info,
)
from repro.observability import RunContext
from repro.observability.sinks import sanitize_value
from repro.queueing.multiplexer import service_rate_for_utilization
from repro.queueing.overflow import transient_overflow_mc
from repro.simulation.runner import mc_overflow_vs_buffer_curve
from repro.stats.random import spawn_rngs

from .conftest import format_series

#: Smaller than the IS sweep's buffers on purpose: plain MC can only
#: resolve the moderate probabilities of small buffers anyway, and the
#: short-horizon legs are exactly where per-call embedding overhead
#: dominates.
BUFFERS = [10.0, 20.0, 30.0, 40.0, 50.0]
REPLICATIONS = 400
UTILIZATION = 0.85
HORIZON_FACTOR = 10
SEED = 1995

#: Acceptance threshold for the cache-bypass bookkeeping overhead.
MAX_BYPASS_OVERHEAD = 0.02


def _model():
    return CompositeCorrelation.paper_fit().with_continuity()


def _transform(x):
    """Cheap unit-mean-ish marginal so the bench isolates generation."""
    return np.maximum(x + 1.0, 0.0)


def _seed_style_sweep(model):
    """The seed's loop: per-replication calls, per-call embedding."""
    mu = service_rate_for_utilization(1.0, UTILIZATION)
    rngs = spawn_rngs(SEED, len(BUFFERS))
    estimates = []
    for b, rng in zip(BUFFERS, rngs):
        horizon = int(HORIZON_FACTOR * b)
        rows = np.empty((REPLICATIONS, horizon))
        for i in range(REPLICATIONS):
            rows[i] = davies_harte_generate(
                model, horizon, random_state=rng, spectral_table=False
            )
        estimates.append(
            transient_overflow_mc(_transform(rows), mu, b)
        )
    return estimates


def _bypass_bookkeeping_seconds(model, rounds=200):
    """Per-call cost the bypass path adds over the seed's inline step.

    The seed generator's spectral step was the full FFT followed by a
    negative-eigenvalue scan (``eig < 0`` + ``np.any``) to drive the
    clip/raise policy; the bypass path replaces it with
    :func:`build_eigenvalue_entry` + :func:`apply_eigenvalue_policy`.
    The delta between those two — entry construction, bookkeeping
    floats, the immutability flag — is what this measures.
    """
    horizon = int(HORIZON_FACTOR * BUFFERS[-1])
    acvf = model.acvf(horizon + 1)

    def best(fn):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    def seed_step():
        eigenvalues = circulant_eigenvalues(acvf, spectrum="full")
        if np.any(eigenvalues < 0):  # pragma: no cover - clean model
            raise AssertionError("bench model must be embeddable")

    seed = best(seed_step)
    entry = best(
        lambda: apply_eigenvalue_policy(
            build_eigenvalue_entry(acvf), "clip"
        )
    )
    return max(entry - seed, 0.0)


def test_ablation_spectral_cache(benchmark, emit, record_bench):
    model = _model()

    start = time.perf_counter()
    seed_estimates = _seed_style_sweep(model)
    seed_seconds = time.perf_counter() - start

    # Cold cache so the cached path pays for its own table build.
    clear_spectral_cache()
    ctx = RunContext()

    def cached_sweep():
        return mc_overflow_vs_buffer_curve(
            model,
            _transform,
            utilization=UTILIZATION,
            buffer_sizes=BUFFERS,
            replications=REPLICATIONS,
            horizon_factor=HORIZON_FACTOR,
            random_state=SEED,
            workers=1,
            metrics=ctx,
        )

    start = time.perf_counter()
    curve = benchmark.pedantic(cached_sweep, rounds=1, iterations=1)
    cached_seconds = max(time.perf_counter() - start, 1e-9)

    speedup = seed_seconds / cached_seconds
    info = spectral_cache_info()

    calls = len(BUFFERS) * REPLICATIONS
    per_call_wall = seed_seconds / calls
    bookkeeping = _bypass_bookkeeping_seconds(model)
    bypass_overhead = bookkeeping / per_call_wall

    rows = [
        ("seed (per-call embedding)", f"{seed_seconds:.3f}s"),
        ("shared table + batched legs", f"{cached_seconds:.3f}s"),
        ("speedup", f"{speedup:.1f}x"),
        (
            "table cache",
            f"{info.misses} miss, {info.hits} hits, "
            f"{info.eigenvalue_builds} eigenvalue builds",
        ),
        (
            "bypass bookkeeping",
            f"{bypass_overhead * 100:.3f}% of a per-call generation "
            f"(threshold {MAX_BYPASS_OVERHEAD * 100:.0f}%)",
        ),
    ]
    emit(
        f"== Ablation: spectral cache sharing "
        f"(Fig. 16 MC sweep, b_max={BUFFERS[-1]:g}, "
        f"{REPLICATIONS} replications) ==",
        *format_series(("variant", "wall time"), rows),
    )
    spectral_snapshot = [
        {
            key: sanitize_value(value)
            for key, value in entry.items()
            if not isinstance(value, list)
        }
        for entry in ctx.snapshot()
        if str(entry["name"]).startswith(("spectral.", "mc."))
    ]
    record_bench(
        "spectral_cache_sweep",
        buffers=BUFFERS,
        replications=REPLICATIONS,
        seed_seconds=seed_seconds,
        cached_seconds=cached_seconds,
        speedup=speedup,
        bypass_bookkeeping_seconds=bookkeeping,
        bypass_overhead_fraction=bypass_overhead,
        bypass_threshold=MAX_BYPASS_OVERHEAD,
        cache_info=dict(info._asdict()),
        metrics_snapshot=spectral_snapshot,
    )

    cached_probs = [e.probability for e in curve.estimates]
    seed_probs = [e.probability for e in seed_estimates]
    # Bitwise agreement: the cache is an optimisation, not a different
    # estimator (RNG-neutral, batched draw == sequential draws).
    assert cached_probs == seed_probs
    # All legs share one prewarmed table: a single miss, one eigenvalue
    # build per distinct horizon.
    assert info.misses == 1
    assert info.eigenvalue_builds == len(BUFFERS)
    assert speedup >= 3.0
    assert bypass_overhead < MAX_BYPASS_OVERHEAD, (
        f"cache-bypass bookkeeping {bypass_overhead:.4%} exceeds "
        f"{MAX_BYPASS_OVERHEAD:.0%} of a per-call generation"
    )
