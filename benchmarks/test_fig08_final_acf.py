"""Fig. 8 — autocorrelation of the trace vs the final simulated process.

After compensating the background ACF by the attenuation factor
(Step 4, eq. 14), the paper regenerates the foreground process and
shows its ACF matching the empirical one.  The bench generates a
full-length synthetic trace from the fitted model and prints the two
ACFs side by side.
"""

import numpy as np

from repro.estimators.acf import sample_acf
from repro.stats.asciiplot import ascii_plot

from .conftest import format_series

REPORT_LAGS = (1, 10, 30, 60, 100, 150, 200, 300, 400, 500)


def test_fig08_final_acf_match(benchmark, unified_model,
                               intra_trace_full, emit):
    def regenerate():
        y = unified_model.generate(
            intra_trace_full.num_frames,
            method="davies-harte",
            random_state=21,
        )
        return sample_acf(y, 500)

    model_acf = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    empirical_acf = sample_acf(intra_trace_full.sizes, 500)

    rows = [
        (k, f"{empirical_acf[k]:.4f}", f"{model_acf[k]:.4f}",
         f"{abs(empirical_acf[k] - model_acf[k]):.4f}")
        for k in REPORT_LAGS
    ]
    max_err = float(
        np.max(np.abs(empirical_acf[1:] - model_acf[1:]))
    )
    mean_err = float(
        np.mean(np.abs(empirical_acf[1:] - model_acf[1:]))
    )
    lags = np.arange(1, 501)
    emit(
        "== Fig. 8: empirical vs simulated foreground ACF ==",
        *format_series(("lag", "empirical", "model", "|err|"), rows),
        f"max |error| over lags 1..500: {max_err:.4f}",
        f"mean |error|: {mean_err:.4f}",
        "paper: visually overlapping curves",
        ascii_plot(
            lags,
            {
                "empirical": empirical_acf[1:],
                "model": model_acf[1:],
            },
            title="Fig. 8 — foreground ACF, empirical vs model",
            x_label="lag k",
            y_label="r(k)",
            height=14,
        ),
    )
    assert mean_err < 0.1
    assert max_err < 0.2
