"""Ablation — the unified approach vs a FARIMA(p, d, 0) baseline.

Section 1 of the paper argues that although FARIMA(p, d, q) can model
SRD and LRD together, obtaining accurate (p, q) estimates "for the
generation of traces with arbitrary marginals" is difficult — the
motivation for modeling the ACF directly.  The bench makes this
concrete: both approaches Gaussianize the trace through the same
marginal transform, then

- the unified model fits the composite SRD+LRD ACF directly (knee,
  exponential head, power tail, attenuation compensation), while
- the baseline fits FARIMA(1, d, 0) by Whittle + fractional
  differencing + Yule-Walker,

and both regenerate a full-length foreground trace whose ACF is
compared against the empirical one.
"""

import numpy as np

from repro.estimators.acf import sample_acf
from repro.estimators.farima_fit import fit_farima
from repro.processes.davies_harte import davies_harte_generate

from .conftest import format_series


def test_ablation_farima_baseline(benchmark, unified_model,
                                  intra_trace_full, emit):
    transform = unified_model.transform_
    n = intra_trace_full.num_frames
    empirical_acf = sample_acf(intra_trace_full.sizes, 500)

    def run_baseline():
        # Gaussianize the trace (the awkward step the paper criticises:
        # FARIMA machinery needs a Gaussian series to work on).
        z = np.asarray(transform.inverse(intra_trace_full.sizes))
        z = np.clip(z, -8.0, 8.0)  # guard the extreme ECDF points
        fit = fit_farima(z, p=1)
        background_acvf = fit.acvf(n + 1)
        x = davies_harte_generate(
            background_acvf, n, random_state=91
        )
        y = np.asarray(transform(x))
        return fit, sample_acf(y, 500)

    fit, baseline_acf = benchmark.pedantic(
        run_baseline, rounds=1, iterations=1
    )
    unified_trace = unified_model.generate(
        n, method="davies-harte", random_state=92
    )
    unified_acf = sample_acf(unified_trace, 500)

    def mean_error(acf):
        return float(np.mean(np.abs(acf[1:] - empirical_acf[1:])))

    rows = [
        ("unified (paper)", f"{mean_error(unified_acf):.4f}"),
        (f"FARIMA(1, d={fit.d:.3f}) baseline",
         f"{mean_error(baseline_acf):.4f}"),
    ]
    emit(
        "== Ablation: unified approach vs FARIMA(1, d, 0) baseline ==",
        *format_series(("approach", "mean |ACF error| (lags 1-500)"),
                       rows),
        f"baseline fitted AR coefficient: {fit.ar[0]:.4f}, "
        f"Whittle H = {fit.hurst:.4f}",
        "paper's §1 claim: fitting FARIMA orders for arbitrary "
        "marginals is hard; modeling the ACF directly is more robust",
    )
    # Both produce usable models; the unified fit should not lose.
    assert mean_error(unified_acf) < 0.12
    assert mean_error(unified_acf) <= mean_error(baseline_acf) + 0.01
