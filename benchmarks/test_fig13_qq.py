"""Fig. 13 — Q-Q plot of the simulated vs empirical marginals.

The paper's Q-Q points lie on the diagonal up to ~12-14 kB.  The bench
prints paired quantiles of the composite model output against the
interframe trace and asserts per-quantile agreement.
"""

import numpy as np

from repro.stats.qq import qq_points

from .conftest import format_series


def test_fig13_qq_plot(benchmark, composite_model, ibp_trace_full, emit):
    def regenerate():
        traces = [
            composite_model.generate(3_600, random_state=61 + i)
            for i in range(64)
        ]
        return np.concatenate([t.sizes for t in traces])

    model_sizes = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    qa, qb = qq_points(ibp_trace_full.sizes, model_sizes, count=20)

    rows = [
        (f"{(i + 0.5) / 20:.3f}", f"{a:.0f}", f"{b:.0f}",
         f"{(b - a) / a * 100:+.1f}%")
        for i, (a, b) in enumerate(zip(qa, qb))
    ]
    emit(
        "== Fig. 13: Q-Q plot, trace quantiles vs model quantiles ==",
        *format_series(
            ("prob level", "trace", "model", "relative gap"), rows
        ),
        "paper: points on the diagonal",
    )
    np.testing.assert_allclose(qb, qa, rtol=0.12)
    assert float(np.mean(np.abs(qb - qa) / qa)) < 0.06
