"""Fig. 16 — overflow probability vs buffer size at four utilizations.

The paper plots log10 P(Q > b) against the normalized buffer size for
utilizations 0.8/0.6/0.4/0.2, using 1000 IS replications per point
with stop time k = 10 b, and overlays the time-average results from
the single empirical trace.  Expected shape:

- probabilities decay slowly with b (self-similar input!),
- curves are ordered by utilization,
- trace and model agree at high utilization, and the trace runs out of
  resolution at low utilizations (the paper's own caveat: one finite
  trace cannot estimate rare events).
"""

import numpy as np

from repro.queueing.multiplexer import service_rate_for_utilization
from repro.queueing.overflow import steady_state_overflow_from_trace
from repro.simulation.runner import overflow_vs_buffer_curve
from repro.stats.asciiplot import ascii_plot

from .conftest import format_series, scaled

#: Fig. 16 parameters.
BUFFER_SIZES = [25.0, 50.0, 100.0, 150.0, 200.0, 250.0]
UTILIZATIONS = (0.8, 0.6, 0.4, 0.2)
REPLICATIONS = 1000
#: Near-optimal twists per utilization (from Fig. 14-style scans).
TWISTS = {0.8: 0.5, 0.6: 1.0, 0.4: 1.5, 0.2: 2.5}


def test_fig16_overflow_vs_buffer(benchmark, unified_model,
                                  arrival_transform, intra_trace_full,
                                  emit):
    def run_all():
        curves = {}
        for utilization in UTILIZATIONS:
            curves[utilization] = overflow_vs_buffer_curve(
                unified_model.background_correlation,
                arrival_transform,
                utilization=utilization,
                buffer_sizes=BUFFER_SIZES,
                replications=scaled(REPLICATIONS),
                twisted_mean=TWISTS[utilization],
                random_state=int(utilization * 100),
            )
        return curves

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The paper's "data trace results": one long run per utilization.
    arrivals = intra_trace_full.normalized_sizes()
    trace_logs = {}
    for utilization in UTILIZATIONS:
        estimates = steady_state_overflow_from_trace(
            arrivals,
            service_rate_for_utilization(1.0, utilization),
            BUFFER_SIZES,
        )
        trace_logs[utilization] = [e.log10_probability for e in estimates]

    for utilization in UTILIZATIONS:
        model_logs = curves[utilization].log10_probabilities
        rows = [
            (
                int(b),
                f"{ml:.2f}" if np.isfinite(ml) else "-inf",
                f"{tl:.2f}" if np.isfinite(tl) else "-inf (trace too short)",
            )
            for b, ml, tl in zip(
                BUFFER_SIZES, model_logs, trace_logs[utilization]
            )
        ]
        emit(
            f"== Fig. 16 (util {utilization}): log10 P(Q > b) vs b ==",
            *format_series(
                ("buffer b", "model (IS)", "empirical trace"), rows
            ),
        )

    emit(
        f"(N = {scaled(REPLICATIONS)} replications per point, k = 10b, "
        "twists per utilization: "
        + ", ".join(f"{u}: {m}" for u, m in TWISTS.items())
        + ")",
        ascii_plot(
            np.asarray(BUFFER_SIZES),
            {
                f"util {u}": curves[u].log10_probabilities
                for u in UTILIZATIONS
            },
            title="Fig. 16 — log10 P(Q > b) vs normalized buffer size",
            x_label="buffer b",
            y_label="log10 P",
            height=16,
        ),
    )

    # Shape assertions.
    for utilization in UTILIZATIONS:
        logs = curves[utilization].log10_probabilities
        assert np.all(np.isfinite(logs))
        # Decay with buffer size (slowly: self-similar input).
        assert logs[0] > logs[-1]
    # Curves ordered by utilization at every buffer size.
    for i in range(len(BUFFER_SIZES)):
        ordered = [
            curves[u].log10_probabilities[i] for u in (0.8, 0.6, 0.4, 0.2)
        ]
        assert ordered == sorted(ordered, reverse=True)
    # Model vs trace agreement where the trace has resolution
    # (high utilization, small buffers).
    for utilization in (0.8, 0.6):
        gap = abs(
            curves[utilization].log10_probabilities[0]
            - trace_logs[utilization][0]
        )
        assert gap < 0.8  # within a factor ~6 at the first buffer point
