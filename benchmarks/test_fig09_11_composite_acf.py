"""Figs. 9-11 — composite I/B/P model ACF vs the empirical trace.

The paper compares the frame-level autocorrelation of the composite
synthetic trace against the interframe-coded empirical trace over
three lag windows (1-150, 151-300, 301-490).  The oscillating shape is
dominated by the period-12 GOP structure; the envelope decays slowly
(LRD).  One bench covers all three windows.
"""

import numpy as np

from repro.estimators.acf import sample_acf

from .conftest import format_series

WINDOWS = {
    "Fig. 9 (lags 1-150)": (1, 150),
    "Fig. 10 (lags 151-300)": (151, 300),
    "Fig. 11 (lags 301-490)": (301, 490),
}


def test_fig09_to_11_composite_acf(benchmark, composite_model,
                                   ibp_trace_full, emit):
    def regenerate():
        trace = composite_model.generate(
            ibp_trace_full.num_frames,
            method="davies-harte",
            random_state=31,
        )
        return sample_acf(trace.sizes, 490)

    model_acf = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    empirical_acf = sample_acf(ibp_trace_full.sizes, 490)

    for title, (lo, hi) in WINDOWS.items():
        lags = [lo, lo + 11, (lo + hi) // 2 // 12 * 12,
                (lo + hi) // 2 // 12 * 12 + 6, hi - hi % 12, hi]
        lags = sorted({k for k in lags if lo <= k <= hi})
        rows = [
            (k, f"{empirical_acf[k]:.4f}", f"{model_acf[k]:.4f}")
            for k in lags
        ]
        window = slice(lo, hi + 1)
        err = float(
            np.mean(np.abs(empirical_acf[window] - model_acf[window]))
        )
        emit(
            f"== {title}: composite model vs trace ACF ==",
            *format_series(("lag", "empirical", "model"), rows),
            f"mean |error| over window: {err:.4f}",
        )
        assert err < 0.1

    # GOP periodicity: multiples of 12 are local maxima in both.
    for acf in (empirical_acf, model_acf):
        assert acf[12] > acf[6]
        assert acf[24] > acf[18]
        assert acf[120] > acf[114]
    # LRD envelope: the period-12 peaks decay slowly.
    assert model_acf[480] > 0.05
