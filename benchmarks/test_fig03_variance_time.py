"""Fig. 3 — variance-time plot of the trace.

The paper fits a least-squares line with slope -0.2234 through the
log-log variance-time points and reports H-hat = 0.89.  The bench
prints the (log m, log var) series and the fitted slope/Hurst value.
"""

from repro.estimators.variance_time import variance_time_estimate

from .conftest import format_series

#: The paper's reported slope and Hurst estimate for Fig. 3.
PAPER_SLOPE = -0.2234
PAPER_HURST = 0.89


def test_fig03_variance_time(benchmark, intra_trace_full, emit):
    estimate = benchmark.pedantic(
        variance_time_estimate,
        args=(intra_trace_full.sizes,),
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"{lm:.3f}", f"{lv:.4f}")
        for lm, lv in zip(estimate.log_levels, estimate.log_variances)
    ]
    emit(
        "== Fig. 3: variance-time plot ==",
        *format_series(("log10(m)", "log10(var(X^(m)))"), rows),
        f"fitted slope: {estimate.fit.slope:.4f} "
        f"(paper: {PAPER_SLOPE})",
        f"Hurst estimate: {estimate.hurst:.3f} (paper: {PAPER_HURST}; "
        "codec ground truth 0.90)",
        f"fit R^2: {estimate.fit.r_squared:.3f}",
    )
    # Shape: clearly self-similar (slope magnitude well below 1, in the
    # LRD band), good linear fit.
    assert -0.6 < estimate.fit.slope < -0.05
    assert 0.7 < estimate.hurst < 1.0
    assert estimate.fit.r_squared > 0.9
