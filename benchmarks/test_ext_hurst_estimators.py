"""Extension — Hurst estimator comparison (beyond the paper's Figs. 3-4).

The paper combines two graphical estimators (variance-time, R/S) into
its working Ĥ = 0.9.  This bench runs five estimators on (a) exact fGn
with known H = 0.9 (calibration of the estimators themselves) and (b)
the full-length video trace, showing how the SRD components and the
marginal transform bias each estimator differently — the practical
reason the paper rounds rather than trusts any single estimate.
"""

from repro.estimators.dfa import dfa_estimate
from repro.estimators.periodogram import periodogram_estimate
from repro.estimators.rs_analysis import rs_estimate
from repro.estimators.variance_time import variance_time_estimate
from repro.estimators.whittle import whittle_estimate
from repro.processes.fgn import fgn_generate

from .conftest import format_series

TRUE_HURST = 0.9


def _run_all(series):
    return {
        "variance-time": variance_time_estimate(series).hurst,
        "R/S": rs_estimate(series).hurst,
        "periodogram": periodogram_estimate(series).hurst,
        "DFA": dfa_estimate(series).hurst,
        "Whittle": whittle_estimate(series).hurst,
    }


def test_ext_hurst_estimator_comparison(benchmark, intra_trace_full,
                                        emit):
    from repro.processes.mg_infinity import (
        MGInfinityConfig,
        mg_infinity_generate,
    )

    reference = fgn_generate(TRUE_HURST, 1 << 17, random_state=33)
    # Independent cross-check substrate: M/G/inf counts with Pareto
    # sessions, alpha = 3 - 2H, share none of the Gaussian machinery.
    mg_config = MGInfinityConfig(
        session_rate=2.0, duration_alpha=3.0 - 2.0 * TRUE_HURST,
        duration_min=2.0,
    )
    mg_counts = mg_infinity_generate(
        mg_config, 1 << 17, random_state=34
    )

    def run_all_three():
        return (
            _run_all(reference),
            _run_all(mg_counts),
            _run_all(intra_trace_full.sizes),
        )

    fgn_results, mg_results, trace_results = benchmark.pedantic(
        run_all_three, rounds=1, iterations=1
    )
    rows = [
        (
            name,
            f"{fgn_results[name]:.3f}",
            f"{mg_results[name]:.3f}",
            f"{trace_results[name]:.3f}",
        )
        for name in fgn_results
    ]
    emit(
        "== Extension: Hurst estimators — fGn(0.9), M/G/inf(H=0.9), "
        "video trace ==",
        *format_series(
            ("estimator", "exact fGn", "M/G/inf counts", "video trace"),
            rows,
        ),
        "paper: variance-time 0.89, R/S 0.92, adopted 0.90",
    )
    # The non-Gaussian M/G/inf substrate is also diagnosed as LRD.
    for name, value in mg_results.items():
        assert value > 0.6, name
    # On exact fGn every estimator lands near the truth.
    for name, value in fgn_results.items():
        assert abs(value - TRUE_HURST) < 0.08, name
    # On the trace, all estimators still diagnose strong LRD.  The
    # periodogram regression over the lowest frequencies is inflated
    # past 1 by the SRD knee's spectral shoulder — exactly the kind of
    # estimator disagreement that led the paper to average and round.
    for name, value in trace_results.items():
        assert value > 0.7, name
        if name != "periodogram":
            assert value < 1.05, name
