"""Ablation — Davies-Harte vs Hosking vs RMD for fGn generation.

Hosking is exact for any positive-definite ACF but costs O(n^2);
Davies-Harte costs O(n log n) and makes the 238k-frame synthetic trace
substitute feasible; random midpoint displacement (RMD) is the era's
O(n) approximation, fast but with a *biased* correlation structure.
The bench measures all three at a length where they are comparable and
verifies the exact methods sample the same law while quantifying RMD's
bias.
"""

import time

import numpy as np

from repro.processes.correlation import FGNCorrelation
from repro.processes.davies_harte import davies_harte_generate
from repro.processes.hosking import hosking_generate
from repro.processes.rmd import rmd_generate

from .conftest import format_series

N = 4096
HURST = 0.9


def test_ablation_generators(benchmark, emit):
    correlation = FGNCorrelation(HURST)

    start = time.perf_counter()
    hosking_path = hosking_generate(correlation, N, random_state=1)
    hosking_seconds = time.perf_counter() - start

    start = time.perf_counter()
    dh_path = benchmark.pedantic(
        davies_harte_generate,
        args=(correlation, N),
        kwargs={"random_state": 2},
        rounds=1,
        iterations=1,
    )
    dh_seconds = max(time.perf_counter() - start, 1e-9)

    start = time.perf_counter()
    rmd_path = rmd_generate(HURST, N, random_state=5)
    rmd_seconds = max(time.perf_counter() - start, 1e-9)

    # Statistical equivalence: compare batched lag-1 statistics.
    dh_batch = davies_harte_generate(
        correlation, 256, size=4000, random_state=3
    )
    ho_batch = hosking_generate(correlation, 256, size=4000,
                                random_state=4)
    rmd_batch = rmd_generate(HURST, 256, size=500, random_state=6)
    dh_lag1 = float(np.mean(dh_batch[:, :-1] * dh_batch[:, 1:]))
    ho_lag1 = float(np.mean(ho_batch[:, :-1] * ho_batch[:, 1:]))
    rmd_lag1 = float(np.mean(rmd_batch[:, :-1] * rmd_batch[:, 1:]))

    rows = [
        ("Hosking O(n^2), exact", f"{hosking_seconds:.3f}s",
         f"{ho_lag1:.4f}"),
        ("Davies-Harte O(n log n), exact", f"{dh_seconds:.3f}s",
         f"{dh_lag1:.4f}"),
        ("RMD O(n), approximate", f"{rmd_seconds:.3f}s",
         f"{rmd_lag1:.4f}"),
        ("exact r(1)", "-", f"{float(correlation(1)):.4f}"),
    ]
    emit(
        f"== Ablation: generators at n={N}, H={HURST} ==",
        *format_series(("generator", "wall time", "lag-1 moment"), rows),
        f"Davies-Harte speedup over Hosking: "
        f"{hosking_seconds / dh_seconds:.1f}x",
        f"RMD lag-1 bias vs exact: "
        f"{abs(rmd_lag1 - float(correlation(1))):.4f} "
        "(why the exact methods are the default)",
    )
    assert dh_path.shape == hosking_path.shape == rmd_path.shape == (N,)
    np.testing.assert_allclose(dh_lag1, float(correlation(1)), atol=0.03)
    np.testing.assert_allclose(ho_lag1, float(correlation(1)), atol=0.03)
    assert dh_seconds < hosking_seconds
    # RMD's deviation exceeds the exact methods' sampling error.
    assert abs(rmd_lag1 - float(correlation(1))) > max(
        abs(dh_lag1 - float(correlation(1))),
        abs(ho_lag1 - float(correlation(1))),
    )
