"""Ablation — shared coefficient tables vs per-leg recursions (Fig. 16).

The paper notes Hosking's method costs O(n^2) per realisation; the seed
implementation additionally re-ran the Durbin-Levinson recursion inside
every leg of a buffer sweep, even though the ``horizon = 10 b`` legs
all read prefixes of one coefficient table.  This bench replays a
Fig. 16-style overflow-vs-buffer sweep two ways:

- **seed**: the original serial loop — per-leg incremental recursion
  (``coeff_table=False``), step-before-activity-check ordering, and no
  replication retirement;
- **table**: the current :func:`overflow_vs_buffer_curve` — one shared
  table built lazily to the largest horizon, early loop exit, and
  active-set row compaction once replications cross.

The two must agree bit for bit (same seeds, same estimates) while the
table path must be at least 3x faster.

The replication count is deliberately *not* scaled by
``REPRO_BENCH_SCALE``: the speedup ratio itself depends on the sweep
geometry (fewer replications shrink the matrix-vector work the
compaction saves), so shrinking the sweep would measure a different
ablation.  The whole bench takes ~2 s.
"""

import time

import numpy as np

from repro.processes.correlation import CompositeCorrelation
from repro.processes.coeff_table import (
    clear_coefficient_cache,
    coefficient_cache_info,
)
from repro.queueing.multiplexer import service_rate_for_utilization
from repro.simulation.importance import TwistedBackground
from repro.simulation.runner import overflow_vs_buffer_curve
from repro.stats.random import spawn_rngs

from .conftest import format_series

BUFFERS = [20.0, 35.0, 50.0, 65.0, 80.0]
REPLICATIONS = 1500
UTILIZATION = 0.85
TWIST = 2.0
HORIZON_FACTOR = 10
SEED = 99


def _transform(x):
    """Cheap unit-mean-ish marginal so the bench isolates generation."""
    return np.maximum(x + 1.0, 0.0)


def _seed_style_leg(
    correlation,
    *,
    service_rate,
    buffer_size,
    horizon,
    twisted_mean,
    replications,
    random_state,
):
    """The seed's is_overflow_probability loop: private incremental
    recursion, step first, no retirement."""
    background = TwistedBackground(
        correlation,
        horizon,
        twisted_mean=twisted_mean,
        size=replications,
        random_state=random_state,
        coeff_table=False,
    )
    n, mu, b = replications, service_rate, buffer_size
    workload = np.zeros(n)
    log_lr = np.zeros(n)
    weights = np.zeros(n)
    active = np.ones(n, dtype=bool)
    for _ in range(horizon):
        ts = background.step()
        arrivals = _transform(ts.twisted_values)
        log_lr[active] += ts.log_lr_increment[active]
        workload[active] += arrivals[active] - mu
        newly_hit = active & (workload > b)
        if np.any(newly_hit):
            weights[newly_hit] = np.exp(log_lr[newly_hit])
            active[newly_hit] = False
        if not np.any(active):
            break
    return float(weights.mean())


def _seed_style_sweep():
    """The seed's serial overflow_vs_buffer_curve loop."""
    mu = service_rate_for_utilization(1.0, UTILIZATION)
    rngs = spawn_rngs(SEED, len(BUFFERS))
    return [
        _seed_style_leg(
            CompositeCorrelation.paper_fit().with_continuity(),
            service_rate=mu,
            buffer_size=b,
            horizon=int(HORIZON_FACTOR * b),
            twisted_mean=TWIST,
            replications=REPLICATIONS,
            random_state=rng,
        )
        for b, rng in zip(BUFFERS, rngs)
    ]


def test_ablation_coeff_table(benchmark, emit, record_bench):
    start = time.perf_counter()
    seed_probs = _seed_style_sweep()
    seed_seconds = time.perf_counter() - start

    # Cold cache so the table path pays for its own recursion once.
    clear_coefficient_cache()

    def table_sweep():
        return overflow_vs_buffer_curve(
            CompositeCorrelation.paper_fit().with_continuity(),
            _transform,
            utilization=UTILIZATION,
            buffer_sizes=BUFFERS,
            replications=REPLICATIONS,
            twisted_mean=TWIST,
            horizon_factor=HORIZON_FACTOR,
            random_state=SEED,
            workers=1,
        )

    start = time.perf_counter()
    curve = benchmark.pedantic(table_sweep, rounds=1, iterations=1)
    table_seconds = max(time.perf_counter() - start, 1e-9)

    speedup = seed_seconds / table_seconds
    info = coefficient_cache_info()
    rows = [
        ("seed (per-leg recursion)", f"{seed_seconds:.3f}s"),
        ("shared table + compaction", f"{table_seconds:.3f}s"),
        ("speedup", f"{speedup:.1f}x"),
        (
            "table cache",
            f"{info.misses} miss, {info.hits} hits, "
            f"{info.extensions} extensions",
        ),
    ]
    emit(
        f"== Ablation: coefficient table sharing "
        f"(Fig. 16 sweep, b_max={BUFFERS[-1]:g}, "
        f"{REPLICATIONS} replications) ==",
        *format_series(("variant", "wall time"), rows),
    )
    record_bench(
        "coeff_table_sweep",
        buffers=BUFFERS,
        replications=REPLICATIONS,
        seed_seconds=seed_seconds,
        table_seconds=table_seconds,
        speedup=speedup,
        cache_hits=info.hits,
        cache_misses=info.misses,
        cache_extensions=info.extensions,
    )

    table_probs = [e.probability for e in curve.estimates]
    # Bitwise agreement: the table path is an optimisation, not a
    # different estimator.
    assert table_probs == seed_probs
    # All five legs share one table: one miss, then prefix reuse
    # (ascending horizons extend the same table in place).
    assert info.misses == 1
    assert info.hits + info.extensions >= len(BUFFERS) - 1
    assert speedup >= 3.0
