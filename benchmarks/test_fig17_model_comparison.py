"""Fig. 17 — SRD-only vs SRD+LRD vs FGN-only model comparison.

At utilization 0.6 the paper compares overflow probabilities of three
synthetic models against the empirical trace:

1. **SRD only** — the exponential part of the fitted ACF alone: decays
   much too fast at large buffers (this is the classical-model fallacy
   the paper warns about);
2. **SRD + LRD** — the full composite model: tracks the trace;
3. **FGN only** — correct asymptotics but decays too fast at *small*
   buffers because the short-term correlation is too weak.
"""

import numpy as np

from repro.processes.correlation import FGNCorrelation
from repro.queueing.multiplexer import service_rate_for_utilization
from repro.queueing.overflow import steady_state_overflow_from_trace
from repro.simulation.runner import model_comparison_curves

from .conftest import format_series, scaled

#: Fig. 17 parameters.  The paper plots b up to 250; our calibrated
#: source decays more slowly with b, so the SRD-vs-LRD divergence that
#: the paper shows by b = 250 emerges over a slightly longer buffer
#: range here — we extend to b = 500 to display the same contrast.
UTILIZATION = 0.6
BUFFER_SIZES = [25.0, 50.0, 100.0, 250.0, 500.0]
REPLICATIONS = 1000
TWISTED_MEAN = 1.0


def test_fig17_model_comparison(benchmark, unified_model,
                                arrival_transform, intra_trace_full,
                                emit):
    hurst = unified_model.hurst
    models = {
        "SRD+LRD": unified_model.background_correlation,
        "SRD only": unified_model.background_correlation.srd_only(),
        "FGN only": FGNCorrelation(hurst),
    }

    result = benchmark.pedantic(
        model_comparison_curves,
        args=(models, arrival_transform),
        kwargs={
            "utilization": UTILIZATION,
            "buffer_sizes": BUFFER_SIZES,
            "replications": scaled(REPLICATIONS),
            "twisted_mean": TWISTED_MEAN,
            "random_state": 17,
        },
        rounds=1,
        iterations=1,
    )

    trace_estimates = steady_state_overflow_from_trace(
        intra_trace_full.normalized_sizes(),
        service_rate_for_utilization(1.0, UTILIZATION),
        BUFFER_SIZES,
    )
    table = result.log10_table()
    rows = [
        (
            int(b),
            f"{trace_estimates[i].log10_probability:.2f}",
            f"{table['SRD+LRD'][i]:.2f}",
            f"{table['SRD only'][i]:.2f}"
            if np.isfinite(table["SRD only"][i]) else "-inf",
            f"{table['FGN only'][i]:.2f}",
        )
        for i, b in enumerate(BUFFER_SIZES)
    ]
    emit(
        "== Fig. 17: overflow vs buffer size for competing models ==",
        f"(util {UTILIZATION}, N = {scaled(REPLICATIONS)}, k = 10b)",
        *format_series(
            ("buffer b", "trace", "SRD+LRD", "SRD only", "FGN only"),
            rows,
        ),
        "paper shape: SRD-only decays far too fast at large b; "
        "FGN-only decays too fast at small b; SRD+LRD tracks the trace",
    )

    full = table["SRD+LRD"]
    srd = table["SRD only"]
    fgn = table["FGN only"]

    # At small buffers the SRD-only and SRD+LRD models are comparable...
    assert abs(full[0] - srd[0]) < 0.5
    # ...but at the largest buffer, SRD-only has decayed clearly below
    # the SRD+LRD model (the paper's headline contrast)...
    assert srd[-1] < full[-1] - 0.2
    # ...and the divergence grows with the buffer size.
    separations = full - srd
    assert separations[-1] > separations[0] + 0.15
    # SRD-only decays (log-)much faster overall.
    srd_drop = srd[0] - srd[-1]
    full_drop = full[0] - full[-1]
    assert srd_drop > 1.8 * full_drop
    # FGN-only lies below the full model at the smallest buffer
    # (missing short-term correlation mass).
    assert fgn[0] < full[0]
    # The full model stays within an order of magnitude of the trace
    # where the trace has resolution.
    trace_log0 = trace_estimates[0].log10_probability
    assert abs(full[0] - trace_log0) < 1.0
