"""Ablation — batch-vectorised Hosking vs naive per-path generation.

DESIGN.md calls out the batch vectorisation of Hosking's O(n^2) method
as a key engineering choice: the Durbin-Levinson coefficient recursion
runs once per batch instead of once per path, and each step's
conditional means are one matrix-vector product.  This bench measures
the speedup at the paper's replication scale.
"""

import time

import numpy as np

from repro.processes.correlation import CompositeCorrelation
from repro.processes.hosking import hosking_generate

from .conftest import format_series, scaled

N = 500
REPLICATIONS = 200


def test_ablation_hosking_batch(benchmark, emit, record_bench):
    correlation = CompositeCorrelation.paper_fit().with_continuity()
    reps = scaled(REPLICATIONS)

    def batched():
        return hosking_generate(
            correlation, N, size=reps, random_state=1
        )

    # coeff_table=False keeps the naive loop paying the per-path
    # Durbin-Levinson recursion this ablation is about; otherwise the
    # shared table cache would quietly absorb most of the naive cost.
    start = time.perf_counter()
    naive_paths = np.stack(
        [
            hosking_generate(
                correlation, N, random_state=1000 + i, coeff_table=False
            )
            for i in range(reps)
        ]
    )
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_paths = benchmark.pedantic(batched, rounds=1, iterations=1)
    batch_seconds = max(time.perf_counter() - start, 1e-9)

    speedup = naive_seconds / batch_seconds
    rows = [
        ("naive loop", f"{naive_seconds:.3f}s"),
        ("batched", f"{batch_seconds:.3f}s"),
        ("speedup", f"{speedup:.1f}x"),
    ]
    emit(
        f"== Ablation: Hosking batching (n={N}, {reps} paths) ==",
        *format_series(("variant", "wall time"), rows),
    )
    record_bench(
        "hosking_batch",
        n=N,
        replications=reps,
        naive_seconds=naive_seconds,
        batched_seconds=batch_seconds,
        speedup=speedup,
    )
    assert batched_paths.shape == naive_paths.shape
    # Both sample the same law (match second moments loosely).
    # Loose: pooled variance of LRD paths fluctuates at this scale.
    np.testing.assert_allclose(
        batched_paths.var(), naive_paths.var(), rtol=0.25
    )
    assert speedup > 3.0
