"""Table 1 — parameters of the compressed video sequence.

Prints the synthetic trace's Table-1 rows next to the paper's values.
"""

from repro.video.table1 import paper_table1, trace_parameters

from .conftest import format_series


def test_table1(benchmark, intra_trace_full, emit):
    params = benchmark.pedantic(
        trace_parameters, args=(intra_trace_full,), rounds=1, iterations=1
    )
    paper = paper_table1()
    rows = [
        (label, ours, paper.rows()[label])
        for label, ours in params.rows().items()
    ]
    emit(
        "== Table 1: parameters of the compressed video sequence ==",
        *format_series(("parameter", "this repro", "paper"), rows),
    )
    assert params.num_frames == paper.num_frames
    assert params.frame_rate == paper.frame_rate
    assert params.frame_dimensions == paper.frame_dimensions
