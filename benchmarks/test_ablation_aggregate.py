"""Ablation — sharded aggregate engine vs the naive per-source loop.

Two parts:

- **Ablation (N=1024):** the naive way to multiplex N model sources is
  one generator call per source — N small FFTs and N transform passes.
  The sharded engine amortizes that into ``ceil(N / batch_size)``
  vectorized ``(batch, horizon)`` passes through the same registry
  backend (sharing one spectral-cache entry), so it must clear >= 3x.
  Shards only group the reduction, so the shard-scaling bound checks
  that adding shards costs ~nothing (and stays bit-identical).

- **Capacity acceptance (N=1e5):** a heterogeneous mixture — three
  Hurst exponents, Normal and Gamma marginals, a staggered GOP class —
  generated end to end at N=100,000 under a tracemalloc budget that
  only O(batch_size x horizon) memory can meet (the dense matrix would
  be ~1.6 GB per 2048-slot pass), bit-identical across shard counts,
  with the Norros capacity-planning sweep on top: per-source effective
  bandwidth falling with N, admission control inverting the bandwidth
  curve, and the simulated loss-vs-N curve tracking the analytic
  reference within LOSS_DECADES decades.
"""

import time
import tracemalloc

import numpy as np

from repro.core.aggregate import (
    ShardedAggregateModel,
    SourceClass,
    SourcePopulation,
)
from repro.marginals.parametric import (
    GammaDistribution,
    NormalDistribution,
)
from repro.marginals.transform import MarginalTransform
from repro.processes import registry
from repro.queueing.capacity import (
    admissible_sources,
    effective_bandwidth_vs_n,
    loss_vs_n,
)
from repro.stats.random import spawn_rngs

from .conftest import SCALE, format_series, scaled

#: Part A workload (the ISSUE pins the >= 3x assertion at N=1024).
#: The horizon is fixed, not scaled: the ablation isolates per-source
#: dispatch amortization, which is what batching buys.  Past a few
#: hundred slots the FFT flops (identical in both variants) dominate
#: and the ratio tends to 1x by construction — the long-horizon
#: regime is exercised by the acceptance test below instead.  The
#: real-FFT synthesis and the marginal-transform fast paths cut the
#: per-call overhead in BOTH variants, which moved that crossover
#: left (512 slots used to clear ~5x, now ~2.4x); at 128 slots
#: dispatch still dominates and the batched path clears ~7x, leaving
#: margin over the 3x bound.
ABLATION_SOURCES = 1024
ABLATION_HORIZON = 128
ABLATION_BATCH = 256
#: Part B acceptance workload.
ACCEPT_SOURCES = 100_000
ACCEPT_BATCH = 256
ACCEPT_HORIZON = 2048
#: Peak generation memory: a dozen-odd (batch, horizon) work arrays
#: (the batched circulant embedding holds complex copies), fully
#: independent of N — the dense (N, horizon) matrix would be ~1.6 GB
#: at the unscaled acceptance workload.
MEMORY_BUDGET = 96 * 2**20
#: Simulated loss must stay within this many decades of the analytic
#: bufferless reference at every measurable loss-vs-N point.
LOSS_DECADES = 1.2


def heterogeneous_population():
    """Mixed H, mixed marginals, one staggered-GOP class."""
    return SourcePopulation([
        SourceClass(
            "studio", correlation=0.88,
            marginal=NormalDistribution(12.0, 2.5), count=5,
        ),
        SourceClass(
            "sport", correlation=0.80,
            marginal=NormalDistribution(8.0, 2.0), count=3,
            gop_pattern=[2.2, 0.7, 0.7, 0.7, 0.85, 0.85],
        ),
        SourceClass(
            "news", correlation=0.74,
            marginal=GammaDistribution(6.0, 1.0), count=2,
        ),
    ])


def naive_per_source(klass, horizon, seed):
    """The pre-engine baseline: one generator call per source."""
    source = registry.resolve(klass.backend, klass.correlation)
    transform = MarginalTransform(klass.marginal)
    rngs = spawn_rngs(seed, klass.count)
    total = np.zeros(horizon, dtype=float)
    for rng in rngs:
        x = source.sample(horizon, random_state=rng)
        total += np.asarray(transform(x), dtype=float)
    return total


def test_ablation_sharded_vs_naive(benchmark, emit, record_bench):
    horizon = ABLATION_HORIZON
    klass = SourceClass(
        "homogeneous", correlation=0.8,
        marginal=NormalDistribution(10.0, 2.0), count=ABLATION_SOURCES,
    )
    engine = ShardedAggregateModel(klass, batch_size=ABLATION_BATCH)
    engine.generate(horizon, random_state=0)  # warm the spectral cache

    # Min-of-3 on both sides: single-shot wall times at this size are
    # noisy enough to blur the ratio.
    naive_seconds = min(
        _timed(lambda: naive_per_source(klass, horizon, seed=1))
        for _ in range(3)
    )
    benchmark.pedantic(
        lambda: engine.generate(horizon, random_state=1),
        rounds=1, iterations=1,
    )
    sharded_seconds = min(
        _timed(lambda: engine.generate(horizon, random_state=1))
        for _ in range(3)
    )
    speedup = naive_seconds / sharded_seconds

    # Shard scaling: shards group the reduction without touching the
    # generation law, so a 16-way grouping must cost ~the same wall
    # time and return the identical bit pattern.
    single = min(
        _timed(lambda: engine.generate(horizon, shards=1, random_state=3))
        for _ in range(3)
    )
    many = min(
        _timed(lambda: engine.generate(horizon, shards=16, random_state=3))
        for _ in range(3)
    )
    shard_overhead = many / single - 1.0
    np.testing.assert_array_equal(
        engine.generate(horizon, shards=1, random_state=2).arrivals,
        engine.generate(horizon, shards=16, random_state=2).arrivals,
    )

    emit(
        f"== Ablation: sharded aggregate engine "
        f"(N={ABLATION_SOURCES}, horizon={horizon}) ==",
        *format_series(
            ("variant", "seconds", "speedup"),
            [
                ("naive per-source loop", f"{naive_seconds:.3f}s", "1.0x"),
                (
                    f"sharded (batch={ABLATION_BATCH})",
                    f"{sharded_seconds:.3f}s",
                    f"{speedup:.1f}x",
                ),
            ],
        ),
        f"16-shard grouping overhead: {shard_overhead * 100:+.2f}%",
    )
    record_bench(
        "aggregate_sharded_vs_naive",
        num_sources=ABLATION_SOURCES,
        horizon=horizon,
        batch_size=ABLATION_BATCH,
        naive_seconds=naive_seconds,
        sharded_seconds=sharded_seconds,
        speedup=speedup,
        shard_overhead=shard_overhead,
    )
    assert speedup > 3.0
    assert shard_overhead < 0.30


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return max(time.perf_counter() - start, 1e-9)


def test_capacity_acceptance_n_100k(benchmark, emit, record_bench):
    base = heterogeneous_population()
    total = max(20_000, int(round(ACCEPT_SOURCES * SCALE)))
    population = base.scaled_to(total)
    engine = ShardedAggregateModel(population, batch_size=ACCEPT_BATCH)

    # End-to-end generation, bit-identical across shard counts, under
    # a memory budget only the O(batch x horizon) path can meet.
    start = time.perf_counter()
    reference = benchmark.pedantic(
        lambda: engine.generate(
            ACCEPT_HORIZON, shards=1, random_state=42
        ),
        rounds=1, iterations=1,
    )
    single_seconds = max(time.perf_counter() - start, 1e-9)
    tracemalloc.start()
    sharded = engine.generate(ACCEPT_HORIZON, shards=16, random_state=42)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    np.testing.assert_array_equal(sharded.arrivals, reference.arrivals)
    throughput = total * ACCEPT_HORIZON / single_seconds

    # Effective bandwidth falls per source; admission inverts it.
    counts = sorted({max(total // 100, 1), max(total // 10, 1), total})
    bandwidth_curve = effective_bandwidth_vs_n(
        population, counts, buffer_size=0.5, epsilon=1e-3
    )
    assert np.all(np.diff(bandwidth_curve.per_source) < 0)
    admitted = admissible_sources(
        population,
        capacity=float(bandwidth_curve.bandwidths[-1]),
        buffer_size=0.5,
        epsilon=1e-3,
        n_max=2 * total,
    )
    assert admitted == total

    # Loss-vs-N multiplexing gain, validated against the analytic
    # bufferless reference in the N range where loss is measurable.
    loss_counts = [32, 128, 512]
    result = loss_vs_n(
        base,
        loss_counts,
        utilization=0.95,
        buffer_size=0.0,
        horizon=ACCEPT_HORIZON,
        replications=scaled(8, minimum=4),
        batch_size=ACCEPT_BATCH,
        shards=4,
        random_state=7,
    )
    measurable = (result.loss_ratios > 0) & (result.theory > 0)
    assert measurable.any()
    decades = np.abs(
        np.log10(result.loss_ratios[measurable])
        - np.log10(result.theory[measurable])
    )
    gain = result.loss_ratios[0] / max(
        result.loss_ratios[-1], result.theory[-1]
    )

    emit(
        f"== Capacity acceptance: N={total} heterogeneous sweep ==",
        f"generation: {single_seconds:.2f}s "
        f"({throughput / 1e6:.1f}M source-slots/s), "
        f"16-shard peak memory {peak / 2**20:.1f} MiB "
        f"(budget {MEMORY_BUDGET / 2**20:.0f} MiB), bit-identical",
        *format_series(
            ("N", "capacity", "per source", "util"),
            [
                (n, f"{c:.0f}", f"{p:.2f}", f"{u:.3f}")
                for n, c, p, u in zip(
                    bandwidth_curve.n_values,
                    bandwidth_curve.bandwidths,
                    bandwidth_curve.per_source,
                    bandwidth_curve.utilizations,
                )
            ],
        ),
        f"admission at EB({total}): {admitted}",
        *format_series(
            ("N", "loss", "theory", "decades"),
            [
                (
                    n,
                    f"{lr:.3g}",
                    f"{th:.3g}",
                    f"{abs(np.log10(lr) - np.log10(th)):.2f}"
                    if lr > 0 and th > 0 else "-",
                )
                for n, lr, th in zip(
                    result.n_values, result.loss_ratios, result.theory
                )
            ],
        ),
        f"multiplexing gain (N={loss_counts[0]} -> {loss_counts[-1]}): "
        f"{gain:.1f}x",
    )
    record_bench(
        "aggregate_capacity_acceptance",
        num_sources=total,
        horizon=ACCEPT_HORIZON,
        batch_size=ACCEPT_BATCH,
        generation_seconds=single_seconds,
        throughput_source_slots_per_s=throughput,
        peak_memory_bytes=peak,
        effective_bandwidth={
            "n": bandwidth_curve.n_values.tolist(),
            "bandwidths": bandwidth_curve.bandwidths.tolist(),
            "per_source": bandwidth_curve.per_source.tolist(),
        },
        admitted=admitted,
        loss_vs_n={
            "n": result.n_values.tolist(),
            "loss": result.loss_ratios.tolist(),
            "theory": result.theory.tolist(),
        },
        loss_decades=decades.tolist(),
        loss_decades_budget=LOSS_DECADES,
    )
    assert peak < MEMORY_BUDGET, f"peak {peak / 2**20:.1f} MiB"
    assert np.all(decades <= LOSS_DECADES)
    # Multiplexing gain: loss falls by an order of magnitude or more
    # across the sweep.
    assert gain > 10.0
