"""Extension — finite-buffer cell loss ratio vs the tail probability.

The paper's title promises *cell loss* studies; its figures plot the
infinite-buffer tail probability ``P(Q > b)`` as the standard proxy.
This bench makes the relation explicit on the trace: the finite-buffer
cell loss ratio sits below the tail probability at every buffer size
(it counts only the overshooting work, not every exceedance slot), and
both inherit the same slow decay from the self-similar input.
"""

import numpy as np

from repro.queueing.multiplexer import service_rate_for_utilization
from repro.queueing.overflow import (
    cell_loss_ratio_from_trace,
    steady_state_overflow_from_trace,
)

from .conftest import format_series

UTILIZATION = 0.6
BUFFER_SIZES = [5.0, 25.0, 50.0, 100.0, 200.0]


def test_ext_cell_loss_ratio(benchmark, intra_trace_full, emit):
    arrivals = intra_trace_full.normalized_sizes()
    mu = service_rate_for_utilization(1.0, UTILIZATION)

    def run_both():
        clr = cell_loss_ratio_from_trace(arrivals, mu, BUFFER_SIZES)
        tail = steady_state_overflow_from_trace(
            arrivals, mu, BUFFER_SIZES
        )
        return clr, tail

    clr, tail = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def fmt(estimate):
        return (
            f"{estimate.log10_probability:.2f}"
            if estimate.probability > 0
            else "-inf"
        )

    rows = [
        (int(b), fmt(t), fmt(c))
        for b, t, c in zip(BUFFER_SIZES, tail, clr)
    ]
    emit(
        f"== Extension: cell loss ratio vs tail probability "
        f"(util {UTILIZATION}) ==",
        *format_series(
            ("buffer b", "log10 P(Q>b)", "log10 CLR"), rows
        ),
        "CLR <= P(Q>b) pointwise; both decay slowly (LRD input)",
    )
    # The bound holds at every buffer size.
    for c, t in zip(clr, tail):
        assert c.probability <= t.probability + 1e-12
    # Both decay slowly: over a 40x buffer increase, the tail
    # probability falls by less than two decades (self-similar input).
    assert tail[0].log10_probability - tail[-1].log10_probability < 2.0
    # And the CLR is not absurdly far below the tail (same regime).
    for c, t in zip(clr[:3], tail[:3]):
        if c.probability > 0:
            assert t.probability / c.probability < 300.0