"""Fig. 6 — fitting the composite SRD+LRD model to the empirical ACF.

The paper obtains eq. 13:

    r-hat(k) = exp(-0.00565 k) I(k < 60) + 1.59 k^-0.2 I(k >= 60)

This bench runs the same fit (knee detection + LS fit with the LRD
exponent pinned to 2 - 2H) and prints the fitted constants next to the
paper's, plus the fit-vs-data series.
"""

from repro.estimators.acf import sample_acf
from repro.estimators.acf_fit import fit_composite_acf
from repro.estimators.rs_analysis import rs_estimate
from repro.estimators.variance_time import variance_time_estimate

from .conftest import format_series

PAPER = {
    "srd rate": 0.00565,
    "lrd amplitude": 1.59468,
    "lrd exponent": 0.2,
    "knee": 60,
}


def test_fig06_composite_fit(benchmark, intra_trace_full, emit):
    acf = sample_acf(intra_trace_full.sizes, 500)
    hurst = 0.5 * (
        variance_time_estimate(intra_trace_full.sizes).hurst
        + rs_estimate(intra_trace_full.sizes).hurst
    )

    fit = benchmark.pedantic(
        fit_composite_acf,
        args=(acf,),
        kwargs={"lrd_exponent": 2.0 - 2.0 * hurst},
        rounds=1,
        iterations=1,
    )
    model = fit.model
    rows = [
        ("knee Kt", fit.knee, PAPER["knee"]),
        ("SRD rate", f"{model.srd.rates[0]:.5f}", PAPER["srd rate"]),
        ("LRD amplitude L", f"{model.lrd_amplitude:.4f}",
         PAPER["lrd amplitude"]),
        ("LRD exponent gamma", f"{model.lrd_exponent:.4f}",
         PAPER["lrd exponent"]),
        ("nugget", f"{model.nugget:.4f}", "0 (form of eq. 10-11)"),
        ("fit RMSE", f"{fit.rmse:.4f}", "visual fit"),
    ]
    emit(
        "== Fig. 6: composite SRD+LRD fit of the ACF (eq. 13) ==",
        *format_series(("parameter", "this repro", "paper"), rows),
    )
    series = [
        (k, f"{acf[k]:.4f}", f"{float(model(k)):.4f}")
        for k in (1, 10, 30, 60, 100, 200, 300, 500)
    ]
    emit(*format_series(("lag", "empirical", "fitted"), series))

    # Same structural regime as the paper's fit.
    assert 20 <= fit.knee <= 200
    assert 0.001 < model.srd.rates[0] < 0.05
    assert 0.1 < model.lrd_exponent < 0.5
    assert fit.rmse < 0.05
