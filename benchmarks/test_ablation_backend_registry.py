"""Ablation — registry backends on a Fig. 8-sized unconditional path.

The registry's ``auto`` policy routes unconditional fixed-length
generation to Davies-Harte on the claim that it dominates Hosking as
the path grows.  This bench checks the claim where it matters — a
``2^14``-sample path, the regime of the long synthetic-trace figures —
by drawing the same law (fGn, H = 0.9) through three registered
backends and timing each through the uniform ``GaussianSource``
interface.  FARIMA rides along as the exact parameter-driven backend
(``d = H - 1/2``), sampling its own FARIMA(0, d, 0) law.
"""

import time

import numpy as np

from repro.processes import registry
from repro.processes.correlation import FGNCorrelation

from .conftest import format_series

N = 1 << 14
HURST = 0.9
BACKENDS = ("davies_harte", "hosking", "farima")


def test_ablation_backend_registry(benchmark, emit, record_bench):
    correlation = FGNCorrelation(HURST)
    seconds = {}
    paths = {}
    lag1 = {}
    for index, name in enumerate(BACKENDS):
        source = registry.create(name, correlation)
        if name == "davies_harte":
            start = time.perf_counter()
            path = benchmark.pedantic(
                source.sample,
                args=(N,),
                kwargs={"random_state": index},
                rounds=1,
                iterations=1,
            )
        else:
            start = time.perf_counter()
            path = source.sample(N, random_state=index)
        seconds[name] = max(time.perf_counter() - start, 1e-9)
        paths[name] = path
        # Lag-1 moment of the one long path vs the law the source
        # itself advertises (farima targets d = 0.4, not fGn).
        lag1[name] = float(np.mean(path[:-1] * path[1:]))

    rows = []
    for name in BACKENDS:
        source = registry.create(name, correlation)
        target = float(source.acvf(2)[1])
        rows.append(
            (
                name,
                "exact" if registry.get(name).exact else "approx",
                f"{seconds[name]:.3f}s",
                f"{lag1[name]:.4f}",
                f"{target:.4f}",
            )
        )
    speedup = seconds["hosking"] / seconds["davies_harte"]
    emit(
        f"== Ablation: registry backends at n={N}, H={HURST} ==",
        *format_series(
            ("backend", "law", "wall time", "lag-1 moment", "target r(1)"),
            rows,
        ),
        f"Davies-Harte speedup over Hosking: {speedup:.1f}x "
        "(why 'auto' picks it for unconditional paths)",
    )
    record_bench(
        "backend_registry_ablation",
        n=N,
        hurst=HURST,
        seconds={k: round(v, 6) for k, v in seconds.items()},
        davies_harte_speedup_over_hosking=round(speedup, 2),
    )

    for name in BACKENDS:
        assert paths[name].shape == (N,)
        source = registry.create(name, correlation)
        target = float(source.acvf(2)[1])
        # One path of 2^14 samples of an H=0.9 process has slow-mixing
        # sample moments; the band only guards against a wrong law.
        np.testing.assert_allclose(lag1[name], target, atol=0.15)
    assert seconds["davies_harte"] < seconds["hosking"]
