"""Extension — frame spreading (slice-level shaping).

The paper's trace carries 15 slices per frame (Table 1) and the
authors study frame-spreading strategies in reference [15].  This
bench compares a multiplexer fed bunched per-frame bursts against one
fed the same load spread evenly over 15 slice slots: spreading removes
the intra-frame burst and cuts the backlog at small buffers, while at
large buffers (where overflow is driven by multi-frame LRD excursions)
the gain disappears — smoothing cannot fight long-range dependence.
"""

import numpy as np

from repro.queueing.lindley import lindley_recursion
from repro.queueing.overflow import steady_state_overflow_from_trace
from repro.queueing.spreading import slice_service_rate, spread_arrivals

from .conftest import format_series

UTILIZATION = 0.6
SLICES_PER_FRAME = 15
BUFFER_SIZES = [0.5, 1.0, 2.0, 5.0, 25.0, 100.0]


def test_ext_frame_spreading(benchmark, intra_trace_full, emit):
    arrivals = intra_trace_full.normalized_sizes()
    mu = 1.0 / UTILIZATION
    slice_mu = slice_service_rate(mu, SLICES_PER_FRAME)

    def run_both():
        # Bunched at slice resolution: the whole frame arrives in its
        # first slice slot.  (Frame-resolution Lindley would fluid-
        # average the burst away and hide exactly the effect under
        # study.)
        bunched_arrivals = np.zeros(arrivals.size * SLICES_PER_FRAME)
        bunched_arrivals[::SLICES_PER_FRAME] = arrivals
        bunched = steady_state_overflow_from_trace(
            bunched_arrivals, slice_mu, BUFFER_SIZES
        )
        spread = steady_state_overflow_from_trace(
            spread_arrivals(arrivals, SLICES_PER_FRAME),
            slice_mu,
            BUFFER_SIZES,
        )
        return bunched, spread

    bunched, spread = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        (
            b,
            f"{eb.log10_probability:.3f}",
            f"{es.log10_probability:.3f}",
        )
        for b, eb, es in zip(BUFFER_SIZES, bunched, spread)
    ]
    emit(
        "== Extension: frame spreading over "
        f"{SLICES_PER_FRAME} slices (util {UTILIZATION}) ==",
        *format_series(
            ("buffer b", "bunched log10 P", "spread log10 P"), rows
        ),
        "spreading helps at sub-frame buffer scales; LRD dominates at "
        "large buffers",
    )
    # Spreading only reduces backlog (pathwise dominance).
    for eb, es in zip(bunched, spread):
        assert es.probability <= eb.probability + 1e-12
    # Visible relative gain at the smallest (sub-frame) buffer...
    assert spread[0].probability < 0.9 * bunched[0].probability
    # ...vanishing at the largest buffer (the LRD regime: smoothing a
    # single frame cannot fight multi-frame excursions).
    assert spread[-1].probability > 0.95 * bunched[-1].probability
    # The relative gain is monotone shrinking across the buffer range.
    ratios = [
        es.probability / eb.probability
        for eb, es in zip(bunched, spread)
    ]
    assert ratios[0] < ratios[-1]
