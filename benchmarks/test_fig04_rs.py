"""Fig. 4 — pox diagram of R/S for the trace.

The paper's least-squares fit through the pox points has slope 0.9287;
it adopts H-hat = 0.92 from this method.  The bench prints a condensed
pox series (median R/S per block length) and the fitted slope.
"""

import numpy as np

from repro.estimators.rs_analysis import rs_estimate

from .conftest import format_series

#: The paper's reported R/S slope.
PAPER_SLOPE = 0.9287


def test_fig04_rs_pox(benchmark, intra_trace_full, emit):
    estimate = benchmark.pedantic(
        rs_estimate,
        args=(intra_trace_full.sizes,),
        rounds=1,
        iterations=1,
    )
    rows = []
    for n in np.unique(estimate.block_lengths):
        mask = estimate.block_lengths == n
        median_rs = float(np.median(estimate.rs_values[mask]))
        rows.append(
            (f"{np.log10(n):.2f}", f"{np.log10(median_rs):.3f}",
             int(mask.sum()))
        )
    emit(
        "== Fig. 4: R/S pox diagram (median per block length) ==",
        *format_series(("log10(n)", "log10(R/S)", "points"), rows),
        f"fitted slope (Hurst): {estimate.hurst:.3f} "
        f"(paper: {PAPER_SLOPE}; adopted 0.92)",
        f"fit R^2: {estimate.fit.r_squared:.3f}",
    )
    assert 0.7 < estimate.hurst < 1.05
    assert estimate.fit.r_squared > 0.9
