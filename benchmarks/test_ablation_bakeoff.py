"""Ablation — the cross-estimator bake-off at the acceptance workload.

Runs the paired bake-off (every registered Hurst estimator on the same
exact-fGn paths) at the paper's 2^14-sample horizon over
``H in {0.6, 0.7, 0.8, 0.9}`` and:

1. snapshots the per-estimator bias/RMSE/coverage matrix into the
   bench JSON (the machine-readable record behind DESIGN.md §5h);
2. asserts the acceptance criterion — MAVAR RMSE <= R/S and
   <= variance-time at *every* H;
3. bounds the metrics-off overhead the same way the observability
   ablation does: operation count x null-context per-op cost must
   stay under 2% of the plain run's wall time, and instrumentation
   must not perturb a single estimate.
"""

import time

import numpy as np

from repro.estimators.bakeoff import run_bakeoff
from repro.observability import NULL_CONTEXT, RunContext

from .conftest import format_series, scaled

HURSTS = (0.6, 0.7, 0.8, 0.9)
HORIZON = 1 << 14
BACKEND = "davies_harte"
REPLICATIONS = 8
SEED = 1995

#: The acceptance threshold for disabled-instrumentation overhead.
MAX_OVERHEAD = 0.02


def _null_cost_per_op(calls: int = 200_000) -> float:
    """Seconds per disabled-instrumentation call (with label kwargs)."""
    start = time.perf_counter()
    for _ in range(calls):
        NULL_CONTEXT.inc("bakeoff.estimates", 1.0, estimator="mavar")
    return (time.perf_counter() - start) / calls


def test_bakeoff_matrix_and_overhead(benchmark, emit, record_bench):
    replications = scaled(REPLICATIONS, minimum=REPLICATIONS)
    kwargs = dict(
        hursts=HURSTS,
        horizons=(HORIZON,),
        backends=(BACKEND,),
        replications=replications,
        random_state=SEED,
    )
    timings = {}

    def bakeoff(label, metrics=None):
        start = time.perf_counter()
        result = run_bakeoff(metrics=metrics, **kwargs)
        timings[label] = time.perf_counter() - start
        return result

    plain = benchmark.pedantic(
        lambda: bakeoff("plain"), rounds=1, iterations=1
    )
    ctx = RunContext()
    instrumented = bakeoff("instrumented", metrics=ctx)

    # Instrumentation must not perturb a single estimate.
    for a, b in zip(plain.cells, instrumented.cells):
        np.testing.assert_array_equal(a.estimates, b.estimates)
        np.testing.assert_array_equal(a.stderrs, b.stderrs)

    ops = ctx.registry.operation_count
    assert ops > 0
    per_op = _null_cost_per_op()
    bound = ops * per_op / timings["plain"]

    # The acceptance criterion: MAVAR beats both paper-era graphical
    # estimators, cell by cell, at the paper's own horizon.
    rows = []
    for h in HURSTS:
        mavar = plain.cell("mavar", BACKEND, h, HORIZON)
        rs = plain.cell("rs", BACKEND, h, HORIZON)
        vt = plain.cell("variance_time", BACKEND, h, HORIZON)
        rows.append((
            f"{h:.1f}",
            f"{mavar.rmse:.4f}",
            f"{rs.rmse:.4f}",
            f"{vt.rmse:.4f}",
            f"{min(rs.rmse, vt.rmse) / mavar.rmse:.1f}x",
        ))
        assert mavar.rmse <= rs.rmse, (h, mavar.rmse, rs.rmse)
        assert mavar.rmse <= vt.rmse, (h, mavar.rmse, vt.rmse)
    assert plain.winner("rmse") == "mavar"

    summary = plain.summary()
    emit(
        "== Ablation: cross-estimator bake-off "
        f"(fGn {BACKEND}, 2^14 samples, N={replications}/cell) ==",
        *format_series(
            ("H", "mavar rmse", "rs rmse", "vt rmse", "margin"),
            rows,
        ),
        "",
        *plain.table().splitlines(),
        "",
        *format_series(
            ("quantity", "value"),
            [
                ("plain run (s)", f"{timings['plain']:.3f}"),
                ("instrumented run (s)",
                 f"{timings['instrumented']:.3f}"),
                ("metric operations", ops),
                ("null cost per op (ns)", f"{per_op * 1e9:.0f}"),
                ("bounded disabled overhead", f"{bound * 100:.4f}%"),
                ("threshold", f"{MAX_OVERHEAD * 100:.0f}%"),
            ],
        ),
    )
    record_bench(
        "estimator_bakeoff",
        hursts=list(HURSTS),
        horizon=HORIZON,
        backend=BACKEND,
        replications=replications,
        winner_rmse=plain.winner("rmse"),
        summary=summary,
        matrix=[
            {
                "estimator": c.estimator,
                "hurst": c.hurst,
                "bias": c.bias,
                "std": c.std,
                "rmse": c.rmse,
                "coverage": c.coverage,
                "seconds": c.seconds,
            }
            for c in plain.cells
        ],
        plain_seconds=timings["plain"],
        instrumented_seconds=timings["instrumented"],
        operation_count=ops,
        null_cost_per_op_seconds=per_op,
        bounded_overhead_fraction=bound,
        threshold=MAX_OVERHEAD,
    )

    assert bound < MAX_OVERHEAD, (
        f"disabled-instrumentation bound {bound:.4%} exceeds "
        f"{MAX_OVERHEAD:.0%} of the bake-off wall time"
    )
    # Nominal-CI under-coverage is a *finding*, not a failure: record
    # that coverage was measured for every stderr-bearing estimator.
    for name in ("variance_time", "rs", "periodogram", "dfa", "mavar"):
        assert np.isfinite(summary[name]["coverage"]), name
    assert np.isnan(summary["whittle"]["coverage"])
