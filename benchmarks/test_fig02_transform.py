"""Fig. 2 — the transform h(x) mapping N(0,1) to the trace marginal.

The paper plots ``h(x) = F_Y^{-1}(Phi(x))`` over x in [-6, 6]; it is
monotone, passes through the trace median at x = 0, and saturates at
the data extremes.
"""

import numpy as np

from repro.marginals.empirical import EmpiricalDistribution
from repro.marginals.transform import MarginalTransform

from .conftest import format_series


def test_fig02_transform_function(benchmark, intra_trace_full, emit):
    marginal = EmpiricalDistribution(intra_trace_full.sizes, bins=200)
    transform = MarginalTransform(marginal)
    grid = np.linspace(-6.0, 6.0, 25)

    values = benchmark.pedantic(
        transform.table, args=(grid,), rounds=1, iterations=1
    )

    rows = [(f"{x:+.1f}", f"{v:.0f}") for x, v in zip(grid, values)]
    emit(
        "== Fig. 2: transform h(x) from N(0,1) to the trace marginal ==",
        *format_series(("x", "h(x) bytes"), rows),
    )
    # Monotone, median-matching, saturating at the data range.
    assert np.all(np.diff(values) >= 0)
    median = float(np.median(intra_trace_full.sizes))
    assert values[12] == np.asarray(transform(0.0))
    assert abs(float(transform(0.0)) - median) / median < 0.05
    assert values[-1] <= intra_trace_full.sizes.max() + 1e-6
    assert values[0] >= intra_trace_full.sizes.min() - 1e-6
