"""Acceptance — million-source aggregate generation at full hardware speed.

The scale tier above ``test_ablation_aggregate``: the heterogeneous
mixture grown to N=10^6 sources (scaled by ``REPRO_BENCH_SCALE``,
floored at 50k), generated over a 2048-slot horizon through the
process-parallel real-FFT engine.  What is asserted:

- **Throughput:** source-slots per second are recorded unconditionally;
  on a multi-core runner (>= 4 cores, the ``test_ablation_chunked``
  gating idiom) the pooled engine must clear >= 3x the recorded
  4.4M source-slots/s single-process full-FFT baseline.
- **Real-FFT synthesis:** the default ``spectrum_mode="real"`` path
  must not be slower than the legacy full-spectrum path (it does half
  the FFT work); both modes agree to 1e-10 by the generator contract.
- **Memory:** the full-scale generation runs under a 256 MiB
  tracemalloc budget — the dense (N, horizon) matrix would be ~16 GB
  at the unscaled workload, and even per-shard partial buffers would
  blow it; only the streaming O(batch x horizon) fold fits.
- **Bit-identity:** pooling and sharding never change the feed.
"""

import os
import time
import tracemalloc

import numpy as np

from repro.core.aggregate import ShardedAggregateModel

from .conftest import SCALE, format_series
from .test_ablation_aggregate import heterogeneous_population

#: The acceptance population: N=10^6 at full scale, floored so the
#: smoke pass still exercises hundreds of generation blocks.
SCALE_SOURCES = max(50_000, int(round(1_000_000 * SCALE)))
SCALE_HORIZON = 2048
SCALE_BATCH = 1024
#: Feed-generation memory budget.  O(batch x horizon) work arrays plus
#: the bounded in-flight reduction window; independent of N and shards.
MEMORY_BUDGET = 256 * 2**20
#: Recorded single-process full-FFT baseline (BENCH_hosking.json,
#: ``aggregate_capacity_acceptance.throughput_source_slots_per_s``).
BASELINE_SLOTS_PER_S = 4.4e6
#: Multi-core acceptance: pooled throughput vs the recorded baseline.
SPEEDUP_BOUND = 3.0
#: The half-spectrum synthesis must never lose to the full FFT; the
#: slack absorbs wall-clock noise on shared runners.
REAL_VS_FULL_SLACK = 1.15


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return max(time.perf_counter() - start, 1e-9)


def test_scale_acceptance_million_sources(benchmark, emit, record_bench):
    cores = os.cpu_count() or 1
    processes = min(max(cores, 1), 16)
    population = heterogeneous_population().scaled_to(SCALE_SOURCES)
    engine = ShardedAggregateModel(population, batch_size=SCALE_BATCH)

    # Real-vs-full synthesis ablation at a sub-scale N: identical
    # population, identical streams, only the FFT flavour differs.
    probe = heterogeneous_population().scaled_to(
        max(10_000, SCALE_SOURCES // 20)
    )
    real_engine = ShardedAggregateModel(probe, batch_size=SCALE_BATCH)
    full_probe = heterogeneous_population().scaled_to(probe.num_sources)
    for klass in full_probe.classes:
        klass.backend = "davies_harte"
        klass.backend_options["spectrum_mode"] = "full"
    full_engine = ShardedAggregateModel(full_probe, batch_size=SCALE_BATCH)
    real_engine.generate(256, random_state=0)  # warm spectral caches
    full_engine.generate(256, random_state=0)
    real_seconds = min(
        _timed(lambda: real_engine.generate(SCALE_HORIZON, random_state=1))
        for _ in range(2)
    )
    full_seconds = min(
        _timed(lambda: full_engine.generate(SCALE_HORIZON, random_state=1))
        for _ in range(2)
    )
    np.testing.assert_allclose(
        real_engine.generate(512, random_state=5).arrivals,
        full_engine.generate(512, random_state=5).arrivals,
        rtol=1e-10,
    )

    # Bit-identity of the pooled streaming fold at a sub-scale N.
    reference = real_engine.generate(512, random_state=9).arrivals
    for procs, shards in ((min(4, processes), 1), (min(4, processes), 16)):
        np.testing.assert_array_equal(
            real_engine.generate(
                512, shards=shards, processes=procs, random_state=9
            ).arrivals,
            reference,
        )

    # Full-scale pooled generation: throughput, then memory.
    start = time.perf_counter()
    benchmark.pedantic(
        lambda: engine.generate(
            SCALE_HORIZON,
            shards=16,
            processes=processes,
            random_state=42,
        ),
        rounds=1, iterations=1,
    )
    pooled_seconds = max(time.perf_counter() - start, 1e-9)
    throughput = SCALE_SOURCES * SCALE_HORIZON / pooled_seconds

    tracemalloc.start()
    engine.generate(
        SCALE_HORIZON, shards=16, processes=processes, random_state=43
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    emit(
        f"== Scale acceptance: N={SCALE_SOURCES} aggregate "
        f"(horizon={SCALE_HORIZON}, batch={SCALE_BATCH}, "
        f"{cores} cores) ==",
        *format_series(
            ("measure", "value", "bound"),
            [
                (
                    "pooled generation",
                    f"{pooled_seconds:.2f}s",
                    "-",
                ),
                (
                    "throughput",
                    f"{throughput / 1e6:.1f}M slots/s",
                    f">= {SPEEDUP_BOUND * BASELINE_SLOTS_PER_S / 1e6:.1f}M"
                    f" ({cores} >= 4 cores)",
                ),
                (
                    "peak feed memory",
                    f"{peak / 2**20:.1f} MiB",
                    f"< {MEMORY_BUDGET / 2**20:.0f} MiB",
                ),
                (
                    "real-FFT synthesis",
                    f"{real_seconds:.2f}s",
                    f"<= {REAL_VS_FULL_SLACK:.2f}x full "
                    f"({full_seconds:.2f}s)",
                ),
            ],
        ),
        "feed bit-identical across process and shard counts",
    )
    record_bench(
        "aggregate_scale_acceptance",
        num_sources=SCALE_SOURCES,
        horizon=SCALE_HORIZON,
        batch_size=SCALE_BATCH,
        cores=cores,
        processes=processes,
        pooled_seconds=pooled_seconds,
        throughput_source_slots_per_s=throughput,
        baseline_source_slots_per_s=BASELINE_SLOTS_PER_S,
        peak_memory_bytes=peak,
        memory_budget_bytes=MEMORY_BUDGET,
        real_seconds=real_seconds,
        full_seconds=full_seconds,
        real_vs_full_speedup=full_seconds / real_seconds,
    )
    assert peak < MEMORY_BUDGET, f"peak {peak / 2**20:.1f} MiB"
    assert real_seconds <= REAL_VS_FULL_SLACK * full_seconds, (
        f"real {real_seconds:.2f}s vs full {full_seconds:.2f}s"
    )
    # The >= 3x-over-baseline bound only means something with cores to
    # run on; a 1-core box still records the measurement above.
    if cores >= 4:
        assert throughput > SPEEDUP_BOUND * BASELINE_SLOTS_PER_S, (
            f"{throughput / 1e6:.1f}M slots/s with {processes} "
            f"processes on {cores} cores"
        )
