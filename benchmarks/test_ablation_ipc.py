"""Ablation — pool lifetime and cross-process result transport (IPC).

The parallel runtime moved two costs out of the hot path: pool
spin-up (a process-wide reusable executor instead of one
``ProcessPoolExecutor`` per call) and result pickling (shared-memory
descriptors instead of pipe round trips for large ndarray partials).
This bench isolates both on the acceptance aggregate workload
(N=10^6 sources scaled by ``REPRO_BENCH_SCALE``, 2048-slot horizon):

- **Transport:** one full-scale pooled generation per transport
  flavour (``shm`` vs ``pickle``), bit-identical by construction and
  asserted so.  During the shm run, >= 90% of the partial-sum bytes
  crossing the process boundary must move zero-copy (asserted via the
  ``shm.*`` metrics; holds at ``processes=2`` even on a 1-core box).
- **Pool lifetime:** a ``loss_vs_n`` capacity sweep (4 replications
  per N) under the persistent shared pool vs the per-call baseline.
  On a multi-core runner (>= 4 cores, the ``test_ablation_chunked``
  gating idiom) the persistent pool must be >= 2x faster; a 1-core
  box still records both timings.
- **Leaks:** every phase must end with zero live segments — checked
  through the ``segments_live`` gauge *and* a raw ``/dev/shm``
  listing under this process's sweep prefix.
"""

import os
import time

import numpy as np
import pytest

from repro.core.aggregate import ShardedAggregateModel
from repro.observability import RunContext
from repro.queueing.capacity import loss_vs_n
from repro.simulation import shm
from repro.simulation.parallel import shutdown_shared_pool

from .conftest import SCALE, format_series
from .test_ablation_aggregate import heterogeneous_population

#: Acceptance workload: N=10^6 at full scale, floored so the smoke
#: pass still ships hundreds of partial-sum blocks per transport.
SCALE_SOURCES = max(50_000, int(round(1_000_000 * SCALE)))
SCALE_HORIZON = 2048
SCALE_BATCH = 1024
#: Fraction of cross-process result bytes that must move through
#: shared-memory segments during the shm-transport run.
ZERO_COPY_BOUND = 0.9
#: Persistent-vs-per-call acceptance on a multi-core runner.
POOL_SPEEDUP_BOUND = 2.0
#: Capacity sweep for the pool-lifetime phase: small per-call work so
#: the pool spin-up cost is a measurable share of each generation.
LOSS_N_VALUES = (2_000, 4_000)
LOSS_REPLICATIONS = 4
LOSS_HORIZON = 1024
LOSS_BATCH = 128


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return max(time.perf_counter() - start, 1e-9)


def _assert_no_leaks(phase):
    assert shm.shm_stats()["segments_live"] == 0, phase
    if os.path.isdir("/dev/shm"):
        prefix = f"repro{os.getpid()}_"
        leftovers = [
            name for name in os.listdir("/dev/shm")
            if name.startswith(prefix)
        ]
        assert leftovers == [], f"{phase}: {leftovers}"


def test_ipc_transport_and_pool_lifetime(benchmark, emit, record_bench):
    if not shm.shm_available():
        pytest.skip("POSIX shared memory unavailable")
    cores = os.cpu_count() or 1
    processes = min(max(cores, 2), 16)
    population = heterogeneous_population().scaled_to(SCALE_SOURCES)

    # -- Transport ablation: identical pooled generation, only the
    # result path differs.  The ctx is per-run so the shm.* series
    # measure exactly one generation each.
    shm.reset_shm_stats()
    shm_ctx = RunContext()
    shm_engine = ShardedAggregateModel(
        population, batch_size=SCALE_BATCH, metrics=shm_ctx
    )
    pickle_engine = ShardedAggregateModel(population, batch_size=SCALE_BATCH)
    shm_feed = None
    pickle_feed = None

    def run_shm():
        nonlocal shm_feed
        shm_feed = shm_engine.generate(
            SCALE_HORIZON, shards=16, processes=processes,
            transport="shm", random_state=42,
        )

    def run_pickle():
        nonlocal pickle_feed
        pickle_feed = pickle_engine.generate(
            SCALE_HORIZON, shards=16, processes=processes,
            transport="pickle", random_state=42,
        )

    start = time.perf_counter()
    benchmark.pedantic(run_shm, rounds=1, iterations=1)
    shm_seconds = max(time.perf_counter() - start, 1e-9)
    pickle_seconds = _timed(run_pickle)
    np.testing.assert_array_equal(shm_feed.arrivals, pickle_feed.arrivals)
    assert shm_feed.transport == "shm"
    assert pickle_feed.transport == "pickle"

    series = {e["name"]: e for e in shm_ctx.snapshot()}
    zero_copy = series["shm.bytes_zero_copy"]["value"]
    pickled = series.get("shm.bytes_pickled", {}).get("value", 0.0)
    zero_copy_fraction = zero_copy / max(zero_copy + pickled, 1.0)
    _assert_no_leaks("transport ablation")

    # -- Pool-lifetime ablation: the same capacity sweep, persistent
    # shared pool vs one private pool per generation.  Spinning the
    # shared pool down first charges the persistent run its one
    # spin-up.
    loss_kwargs = dict(
        utilization=0.9, buffer_size=0.0, horizon=LOSS_HORIZON,
        replications=LOSS_REPLICATIONS, batch_size=LOSS_BATCH,
        processes=processes, random_state=7,
    )
    base = heterogeneous_population()
    shutdown_shared_pool()
    persistent = {}
    per_call = {}
    persistent_seconds = _timed(lambda: persistent.update(
        result=loss_vs_n(base, LOSS_N_VALUES, pool="shared", **loss_kwargs)
    ))
    per_call_seconds = _timed(lambda: per_call.update(
        result=loss_vs_n(base, LOSS_N_VALUES, pool="per-call", **loss_kwargs)
    ))
    np.testing.assert_array_equal(
        persistent["result"].loss_ratios, per_call["result"].loss_ratios
    )
    pool_speedup = per_call_seconds / persistent_seconds
    _assert_no_leaks("pool-lifetime ablation")

    emit(
        f"== IPC ablation: N={SCALE_SOURCES} aggregate "
        f"(horizon={SCALE_HORIZON}, processes={processes}, "
        f"{cores} cores) ==",
        *format_series(
            ("measure", "value", "bound"),
            [
                ("shm transport", f"{shm_seconds:.2f}s", "-"),
                ("pickle transport", f"{pickle_seconds:.2f}s", "-"),
                (
                    "zero-copy bytes",
                    f"{zero_copy_fraction:.1%} of "
                    f"{(zero_copy + pickled) / 2**20:.0f} MiB",
                    f">= {ZERO_COPY_BOUND:.0%}",
                ),
                (
                    "loss_vs_n persistent pool",
                    f"{persistent_seconds:.2f}s",
                    "-",
                ),
                (
                    "loss_vs_n per-call pools",
                    f"{per_call_seconds:.2f}s "
                    f"({pool_speedup:.1f}x slower)",
                    f">= {POOL_SPEEDUP_BOUND:.0f}x ({cores} >= 4 cores)",
                ),
            ],
        ),
        "feeds bit-identical across transports and pool lifetimes; "
        "zero live segments after every phase",
    )
    record_bench(
        "ipc_transport",
        num_sources=SCALE_SOURCES,
        horizon=SCALE_HORIZON,
        batch_size=SCALE_BATCH,
        cores=cores,
        processes=processes,
        shm_seconds=shm_seconds,
        pickle_seconds=pickle_seconds,
        zero_copy_bytes=zero_copy,
        pickled_bytes=pickled,
        zero_copy_fraction=zero_copy_fraction,
        loss_n_values=list(LOSS_N_VALUES),
        loss_replications=LOSS_REPLICATIONS,
        persistent_seconds=persistent_seconds,
        per_call_seconds=per_call_seconds,
        pool_speedup=pool_speedup,
    )
    assert zero_copy_fraction >= ZERO_COPY_BOUND, (
        f"{zero_copy_fraction:.1%} of result bytes moved zero-copy"
    )
    # The pool-amortization bound only means something with cores to
    # run on; a 1-core box still records both timings above.
    if cores >= 4:
        assert pool_speedup >= POOL_SPEEDUP_BOUND, (
            f"persistent pool only {pool_speedup:.2f}x faster "
            f"({persistent_seconds:.2f}s vs {per_call_seconds:.2f}s) "
            f"with {processes} processes on {cores} cores"
        )
